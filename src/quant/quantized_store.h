// QuantizedStore — compressed in-memory codes serving asymmetric distance
// computation (ADC) behind the prepare()/eval() kernel protocol, the
// traversal half of the DiskANN recipe (Subramanya et al., NeurIPS'19):
// the beam walks the graph over these codes while the full-precision rows
// live out of RAM (quant/mmap_store.h) and only the top rerank_count
// survivors are re-scored exactly.
//
// Two code families behind one surface:
//   * kPQ   — product quantization reusing src/ivf/pq.h's trained
//             codebooks; the prepared query state is the per-subspace ADC
//             lookup table (filled into SearchScratch, zero-alloc steady
//             state), evaluated by the shared quant::adc_sum kernel.
//   * kInt8 — scalar quantization to one int8 per coordinate with a global
//             scale (uint8 data stores x-128 exactly; int8 data is a
//             passthrough, so integer datasets lose nothing); the prepared
//             state is the quantized query plus a MIPS offset-correction
//             bias.
//
// Metric scope: ADC needs the metric to decompose over subspaces as a sum,
// so L2^2 and negative inner product qualify and cosine does not — the
// adapters reject cosine at attach with ann::unsupported_operation.
//
// Determinism: code training (k-means / a parallel max-reduce for the
// scale) and encoding are deterministic; eval accumulates in the fixed
// sequential order documented in quant/quant_kernels.h. The quantized beam
// is therefore byte-identical across worker counts, same as the
// full-precision path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "parlay/parallel.h"
#include "parlay/sequence_ops.h"

#include "core/beam_search.h"
#include "core/distance.h"
#include "core/index_io.h"
#include "core/io.h"
#include "core/points.h"
#include "ivf/pq.h"
#include "quant/quant_kernels.h"
#include "quant/quant_spec.h"

namespace ann {

// Prepared-query state for one quantized evaluation pass. Views into
// SearchScratch buffers — valid until the next bind() on that scratch.
struct QuantPrepared {
  const float* table = nullptr;  // kPQ: m x width ADC lookup table
  std::size_t width = 0;
  const std::int8_t* q8 = nullptr;  // kInt8: quantized query
  float qbias = 0.0f;               // kInt8 MIPS: query-side offset term
};

template <typename Metric, typename T>
class QuantizedStore;

// The view the quantized beam search traverses with: eval(id) is the
// compressed-domain distance of the prepared query to point id.
template <typename Metric, typename T>
struct QuantizedQuery {
  const QuantizedStore<Metric, T>* store = nullptr;
  QuantPrepared prep;

  float eval(PointId id) const { return store->eval(prep, id); }
  void prefetch(PointId id) const { store->prefetch(id); }
};

template <typename Metric, typename T>
class QuantizedStore {
  // Note: cosine instantiations must compile (the backends instantiate this
  // for every metric) but are rejected at runtime before build() ever runs —
  // ADC does not decompose for cosine (see attach_quantized).
  static constexpr bool kMips = std::is_same_v<Metric, NegInnerProduct>;

 public:
  QuantizedStore() = default;

  static QuantizedStore build(const PointSet<T>& points,
                              const QuantizedSpec& spec) {
    QuantizedStore store;
    store.kind_ = spec.kind;
    store.n_ = points.size();
    store.d_ = points.dims();
    if (spec.kind == QuantKind::kPQ) {
      store.pq_ = ProductQuantizer<T>::train(points, spec.pq);
      store.pq_codes_ = store.pq_.encode(points);
      store.m_ = store.pq_.num_subspaces();
      store.width_ = store.pq_.max_codes();
    } else {
      store.build_int8(points);
    }
    return store;
  }

  QuantKind kind() const { return kind_; }
  std::size_t size() const { return n_; }
  std::size_t dims() const { return d_; }

  // Prepare the query into `scratch` (buffers are resized once and reused —
  // steady-state binds allocate nothing) and return the traversal view.
  // Table construction is counted like any other prepared-query setup
  // (fill_adc_table bumps per codebook; the int8 quantization is one pass).
  QuantizedQuery<Metric, T> bind(const T* query, SearchScratch& scratch) const {
    QuantPrepared prep;
    if (kind_ == QuantKind::kPQ) {
      scratch.adc_table.resize(m_ * width_);
      pq_.template fill_adc_table<Metric>(query, scratch.adc_table.data(),
                                          scratch.quant_query_f);
      prep.table = scratch.adc_table.data();
      prep.width = width_;
    } else {
      scratch.quant_query_i8.resize(d_);
      std::int64_t qsum = 0;
      for (std::size_t j = 0; j < d_; ++j) {
        std::int8_t code = quantize_value(query[j]);
        scratch.quant_query_i8[j] = code;
        qsum += code;
      }
      prep.q8 = scratch.quant_query_i8.data();
      if constexpr (kMips) {
        // <q, x> over uint8 data expands to <q8, x8> + off*sum(x8) +
        // off*sum(q8) + off^2*d; the last two are query constants folded
        // into qbias here, the per-point term uses sums_ in eval().
        prep.qbias =
            -scale2_ * static_cast<float>(offset_) *
            (static_cast<float>(qsum) +
             static_cast<float>(offset_) * static_cast<float>(d_));
      }
    }
    return {this, prep};
  }

  // Compressed-domain distance of the prepared query to point id
  // (uncounted; the traversal batches its DistanceCounter::bump).
  float eval(const QuantPrepared& prep, PointId id) const {
    if (kind_ == QuantKind::kPQ) {
      return quant::adc_sum(prep.table, prep.width,
                            pq_codes_.data() + static_cast<std::size_t>(id) * m_,
                            m_);
    }
    const std::int8_t* row =
        i8_codes_.data() + static_cast<std::size_t>(id) * d_;
    if constexpr (kMips) {
      float dot = static_cast<float>(quant::i8_dot(prep.q8, row, d_));
      float point_term =
          sums_.empty() ? 0.0f
                        : static_cast<float>(offset_) *
                              static_cast<float>(sums_[id]);
      return -scale2_ * (dot + point_term) + prep.qbias;
    } else {
      return scale2_ * static_cast<float>(quant::i8_l2(prep.q8, row, d_));
    }
  }

  void prefetch(PointId id) const {
    const char* p =
        kind_ == QuantKind::kPQ
            ? reinterpret_cast<const char*>(
                  pq_codes_.data() + static_cast<std::size_t>(id) * m_)
            : reinterpret_cast<const char*>(
                  i8_codes_.data() + static_cast<std::size_t>(id) * d_);
    __builtin_prefetch(p, 0, 3);
  }

  // Resident bytes of codes + codebooks + corrections — what replaces the
  // full-precision rows in the memory budget.
  std::size_t memory_bytes() const {
    return pq_.memory_bytes() + pq_codes_.capacity() +
           i8_codes_.capacity() + sums_.capacity() * sizeof(std::int32_t);
  }

  const ProductQuantizer<T>& quantizer() const { return pq_; }
  float int8_scale() const { return scale_; }

  // --- persistence (the "PANQ" trailing container payload) -------------------

  void save_payload(std::FILE* f, const std::string& path) const {
    ioutil::write_u32(f, internal::kQuantStoreMagic, path);
    ioutil::write_u32(f, internal::kQuantStoreVersion, path);
    ioutil::write_u32(f, static_cast<std::uint32_t>(kind_), path);
    ioutil::write_u64(f, n_, path);
    ioutil::write_u64(f, d_, path);
    if (kind_ == QuantKind::kPQ) {
      pq_.save_payload(f, path);
      ioutil::write_u64(f, pq_codes_.size(), path);
      ioutil::write_bytes(f, pq_codes_.data(), pq_codes_.size(), path);
    } else {
      ioutil::write_f64(f, scale_, path);
      ioutil::write_u32(f, static_cast<std::uint32_t>(offset_), path);
      ioutil::write_u64(f, i8_codes_.size(), path);
      ioutil::write_bytes(f, i8_codes_.data(), i8_codes_.size(), path);
      ioutil::write_u64(f, sums_.size(), path);
      ioutil::write_bytes(f, sums_.data(), sums_.size() * sizeof(std::int32_t),
                          path);
    }
  }

  static QuantizedStore load_payload(std::FILE* f, const std::string& path) {
    if (ioutil::read_u32(f, path) != internal::kQuantStoreMagic) {
      throw std::runtime_error("not a quantized-store payload: " + path);
    }
    if (ioutil::read_u32(f, path) != internal::kQuantStoreVersion) {
      throw std::runtime_error("unsupported quantized-store version: " + path);
    }
    QuantizedStore store;
    std::uint32_t kind = ioutil::read_u32(f, path);
    if (kind > static_cast<std::uint32_t>(QuantKind::kInt8)) {
      throw std::runtime_error("corrupt quantized-store header: " + path);
    }
    store.kind_ = static_cast<QuantKind>(kind);
    store.n_ = ioutil::read_u64(f, path);
    store.d_ = ioutil::read_u64(f, path);
    if (store.d_ == 0 || store.d_ > (1ull << 24) ||
        store.n_ > (1ull << 48) / store.d_) {
      throw std::runtime_error("corrupt quantized-store header: " + path);
    }
    if (store.kind_ == QuantKind::kPQ) {
      store.pq_ = ProductQuantizer<T>::load_payload(f, path);
      store.m_ = store.pq_.num_subspaces();
      store.width_ = store.pq_.max_codes();
      std::uint64_t bytes = ioutil::read_u64(f, path);
      if (bytes != store.n_ * store.m_) {
        throw std::runtime_error("corrupt quantized-store payload: " + path);
      }
      store.pq_codes_.resize(bytes);
      ioutil::read_bytes(f, store.pq_codes_.data(), bytes, path);
    } else {
      store.scale_ = static_cast<float>(ioutil::read_f64(f, path));
      store.offset_ = static_cast<std::int32_t>(ioutil::read_u32(f, path));
      store.scale2_ = store.scale_ * store.scale_;
      std::uint64_t bytes = ioutil::read_u64(f, path);
      if (bytes != store.n_ * store.d_) {
        throw std::runtime_error("corrupt quantized-store payload: " + path);
      }
      store.i8_codes_.resize(bytes);
      ioutil::read_bytes(f, store.i8_codes_.data(), bytes, path);
      std::uint64_t sums = ioutil::read_u64(f, path);
      if (sums != 0 && sums != store.n_) {
        throw std::runtime_error("corrupt quantized-store payload: " + path);
      }
      store.sums_.resize(sums);
      ioutil::read_bytes(f, store.sums_.data(), sums * sizeof(std::int32_t),
                         path);
    }
    return store;
  }

 private:
  void build_int8(const PointSet<T>& points) {
    if constexpr (std::is_same_v<T, float>) {
      // Global symmetric scale from the dataset's max |x| — a deterministic
      // parallel max-reduce (exact and associative).
      float maxabs = parlay::reduce(
          parlay::tabulate(points.size(), [&](std::size_t i) {
            const float* row = points[static_cast<PointId>(i)];
            float m = 0.0f;
            for (std::size_t j = 0; j < d_; ++j) {
              m = std::max(m, std::fabs(row[j]));
            }
            return m;
          }),
          0.0f, [](float a, float b) { return std::max(a, b); });
      scale_ = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
      offset_ = 0;
    } else if constexpr (std::is_same_v<T, std::uint8_t>) {
      scale_ = 1.0f;
      offset_ = 128;  // x - 128 fits int8 exactly; L2 differences cancel it
    } else {
      scale_ = 1.0f;
      offset_ = 0;  // int8 data passes through unchanged (exact)
    }
    scale2_ = scale_ * scale_;
    i8_codes_.resize(n_ * d_);
    const bool need_sums = kMips && offset_ != 0;
    if (need_sums) sums_.resize(n_);
    parlay::parallel_for(0, n_, [&](std::size_t i) {
      const T* row = points[static_cast<PointId>(i)];
      std::int8_t* out = i8_codes_.data() + i * d_;
      std::int64_t sum = 0;
      for (std::size_t j = 0; j < d_; ++j) {
        out[j] = quantize_value(row[j]);
        sum += out[j];
      }
      if (need_sums) sums_[i] = static_cast<std::int32_t>(sum);
    });
  }

  std::int8_t quantize_value(T v) const {
    if constexpr (std::is_same_v<T, float>) {
      float scaled = v / scale_;
      return static_cast<std::int8_t>(
          std::lround(std::clamp(scaled, -127.0f, 127.0f)));
    } else if constexpr (std::is_same_v<T, std::uint8_t>) {
      return static_cast<std::int8_t>(static_cast<int>(v) - offset_);
    } else {
      return static_cast<std::int8_t>(v);
    }
  }

  QuantKind kind_ = QuantKind::kPQ;
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  // kPQ
  ProductQuantizer<T> pq_;
  std::vector<std::uint8_t> pq_codes_;  // n x m
  std::uint32_t m_ = 0;
  std::size_t width_ = 0;
  // kInt8
  float scale_ = 1.0f;
  float scale2_ = 1.0f;
  std::int32_t offset_ = 0;
  std::vector<std::int8_t> i8_codes_;  // n x d
  std::vector<std::int32_t> sums_;     // per-point code sums (uint8 MIPS only)
};

// Exact rerank: re-score the top `rerank` frontier entries from
// full-precision rows (RowFn: PointId -> const T*), re-sort by (dist, id)
// and truncate the frontier to them — entries past the rerank horizon keep
// incomparable compressed-domain distances, so they are dropped. One
// batched DistanceCounter::bump for the pass.
template <typename Metric, typename T, typename RowFn>
void exact_rerank(const T* query, std::size_t dims,
                  std::vector<Neighbor>& frontier, std::size_t rerank,
                  const RowFn& row) {
  const std::size_t r = std::min(rerank, frontier.size());
  if (r == 0) return;
  const auto prep = Metric::prepare(query, dims);
  for (std::size_t i = 0; i < r; ++i) {
    beam_prefetch_point(row(frontier[i].id), dims);
  }
  for (std::size_t i = 0; i < r; ++i) {
    frontier[i].dist = Metric::eval(prep, query, row(frontier[i].id), dims);
  }
  DistanceCounter::bump(r);
  std::sort(frontier.begin(), frontier.begin() + static_cast<std::ptrdiff_t>(r));
  frontier.resize(r);
}

}  // namespace ann
