// Memory-mapped full-precision vector store — the rerank side of the
// DiskANN recipe: graph traversal runs over compressed in-memory codes
// (quantized_store.h) while the exact coordinates live in a file the kernel
// pages in on demand, so they never count against the resident budget.
//
// On-disk format ("PANV", versioned, fixed 32-byte header):
//
//   [magic u32 "PANV"] [version u32] [dtype code u32] [element size u32]
//   [n u64] [d u64] [n x d row-major elements, unpadded]
//
// Open() validates everything against the actual file size before the first
// access — zero-length, truncated, wrong-magic, wrong-dtype and
// trailing-garbage files all fail with a clean std::runtime_error naming
// the path, never a SIGBUS on the first rerank. row() is bounds-checked
// (it runs a handful of times per query, after the beam; the branch is
// noise next to the page fault it may trigger).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/io.h"
#include "core/points.h"

namespace ann {

namespace internal {
inline constexpr std::uint32_t kVectorStoreMagic = 0x50414e56;  // "PANV"
inline constexpr std::uint32_t kVectorStoreVersion = 1;
inline constexpr std::size_t kVectorStoreHeaderBytes = 32;
}  // namespace internal

template <typename T>
constexpr std::uint32_t vector_store_dtype_code();
template <>
constexpr std::uint32_t vector_store_dtype_code<float>() { return 0; }
template <>
constexpr std::uint32_t vector_store_dtype_code<std::uint8_t>() { return 1; }
template <>
constexpr std::uint32_t vector_store_dtype_code<std::int8_t>() { return 2; }

// Write a PANV vector store holding all rows of `points` (unpadded).
template <typename T>
void write_vector_store(const std::string& path, const PointSet<T>& points) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot create vector store: " + path);
  }
  try {
    ioutil::write_u32(f, internal::kVectorStoreMagic, path);
    ioutil::write_u32(f, internal::kVectorStoreVersion, path);
    ioutil::write_u32(f, vector_store_dtype_code<T>(), path);
    ioutil::write_u32(f, static_cast<std::uint32_t>(sizeof(T)), path);
    ioutil::write_u64(f, points.size(), path);
    ioutil::write_u64(f, points.dims(), path);
    for (std::size_t i = 0; i < points.size(); ++i) {
      ioutil::write_bytes(f, points[static_cast<PointId>(i)],
                          points.dims() * sizeof(T), path);
    }
  } catch (...) {
    std::fclose(f);
    throw;
  }
  if (std::fclose(f) != 0) {
    throw std::runtime_error("short write: " + path);
  }
}

// Read-only mmap over a PANV file. Move-only; the mapping lives as long as
// the store object (unlinking the file underneath it is safe on POSIX).
template <typename T>
class MmapVectorStore {
 public:
  explicit MmapVectorStore(const std::string& path) : path_(path) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw std::runtime_error("cannot open vector store: " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      throw std::runtime_error("cannot stat vector store: " + path);
    }
    const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size < internal::kVectorStoreHeaderBytes) {
      ::close(fd);
      throw std::runtime_error(
          "vector store truncated (smaller than its header): " + path);
    }
    void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw std::runtime_error("cannot mmap vector store: " + path);
    }
    base_ = map;
    mapped_bytes_ = file_size;
    try {
      const std::uint32_t* h32 = static_cast<const std::uint32_t*>(map);
      if (h32[0] != internal::kVectorStoreMagic) {
        throw std::runtime_error("not a vector store (bad magic): " + path);
      }
      if (h32[1] != internal::kVectorStoreVersion) {
        throw std::runtime_error("unsupported vector store version: " + path);
      }
      if (h32[2] != vector_store_dtype_code<T>() || h32[3] != sizeof(T)) {
        throw std::runtime_error(
            "vector store element type mismatch: " + path);
      }
      std::uint64_t n64 = 0, d64 = 0;
      const unsigned char* hb = static_cast<const unsigned char*>(map);
      std::memcpy(&n64, hb + 16, sizeof(n64));
      std::memcpy(&d64, hb + 24, sizeof(d64));
      if (d64 == 0 || d64 > (1ull << 24) || n64 > (1ull << 48) / d64) {
        throw std::runtime_error("corrupt vector store header: " + path);
      }
      const std::uint64_t expected =
          internal::kVectorStoreHeaderBytes + n64 * d64 * sizeof(T);
      if (file_size < expected) {
        throw std::runtime_error(
            "vector store truncated (header promises more rows than the "
            "file holds): " + path);
      }
      if (file_size > expected) {
        throw std::runtime_error(
            "vector store size mismatch (trailing bytes): " + path);
      }
      n_ = n64;
      d_ = d64;
      data_ = reinterpret_cast<const T*>(
          static_cast<const unsigned char*>(map) +
          internal::kVectorStoreHeaderBytes);
    } catch (...) {
      ::munmap(base_, mapped_bytes_);
      throw;
    }
  }

  ~MmapVectorStore() {
    if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
  }

  MmapVectorStore(const MmapVectorStore&) = delete;
  MmapVectorStore& operator=(const MmapVectorStore&) = delete;

  MmapVectorStore(MmapVectorStore&& o) noexcept
      : path_(std::move(o.path_)),
        base_(std::exchange(o.base_, nullptr)),
        mapped_bytes_(std::exchange(o.mapped_bytes_, 0)),
        data_(std::exchange(o.data_, nullptr)),
        n_(std::exchange(o.n_, 0)),
        d_(std::exchange(o.d_, 0)) {}

  MmapVectorStore& operator=(MmapVectorStore&& o) noexcept {
    if (this != &o) {
      if (base_ != nullptr) ::munmap(base_, mapped_bytes_);
      path_ = std::move(o.path_);
      base_ = std::exchange(o.base_, nullptr);
      mapped_bytes_ = std::exchange(o.mapped_bytes_, 0);
      data_ = std::exchange(o.data_, nullptr);
      n_ = std::exchange(o.n_, 0);
      d_ = std::exchange(o.d_, 0);
    }
    return *this;
  }

  std::size_t size() const { return n_; }
  std::size_t dims() const { return d_; }
  const std::string& path() const { return path_; }

  const T* row(PointId i) const {
    if (i >= n_) {
      throw std::out_of_range("MmapVectorStore::row: id " +
                              std::to_string(i) + " out of range (" +
                              std::to_string(n_) + " rows): " + path_);
    }
    return data_ + static_cast<std::size_t>(i) * d_;
  }

  // Bytes of the file mapping — file-backed and evictable, so NOT part of
  // the resident-memory accounting (that is the whole point of the tier);
  // reported separately in stats details.
  std::size_t mapped_bytes() const { return mapped_bytes_; }

 private:
  std::string path_;
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  const T* data_ = nullptr;
  std::size_t n_ = 0;
  std::size_t d_ = 0;
};

}  // namespace ann
