// Memory-mapped full-precision vector store — the rerank side of the
// DiskANN recipe: graph traversal runs over compressed in-memory codes
// (quantized_store.h) while the exact coordinates live in a file the kernel
// pages in on demand, so they never count against the resident budget.
//
// On-disk format ("PANV", versioned):
//
//   v1 (32-byte header, still loadable):
//     [magic u32 "PANV"] [version u32] [dtype code u32] [element size u32]
//     [n u64] [d u64] [n x d row-major elements, unpadded]
//
//   v2 (40-byte header, what the writer emits):
//     [magic u32 "PANV"] [version u32] [dtype code u32] [element size u32]
//     [n u64] [d u64] [header crc32c u32] [pad u32 = 0]
//     [n x d row-major elements, unpadded]
//     [block_rows u32] [num_blocks u32] [crc32c u32 x num_blocks]
//     — the header CRC covers the first 32 bytes and is verified at open;
//     the trailing table holds one CRC32C per block of block_rows rows
//     (~256 KiB of data each), verified LAZILY at the first row() access
//     into the block. Eager whole-file verification would fault every page
//     in at open and defeat the point of the tier; lazy per-block checks
//     cost one checksum pass per block, amortized over its accesses, and
//     still turn any bit flip into ann::corrupt_data before the corrupt
//     coordinates reach a rerank.
//
// Open() validates the header and total file size before the first access —
// zero-length, truncated, wrong-magic, wrong-dtype and trailing-garbage
// files all fail with a clean typed error naming the path (ann::corrupt_data
// for malformed bytes, ann::io_error for OS failures), never a SIGBUS on
// the first rerank. row() is bounds-checked (it runs a handful of times per
// query, after the beam; the branch is noise next to the page fault it may
// trigger), and under an active fault-injection scope it re-stats the file
// to catch truncated-under-mmap before touching the mapping.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/error.h"
#include "core/fault_injection.h"
#include "core/io.h"
#include "core/points.h"

namespace ann {

namespace internal {
inline constexpr std::uint32_t kVectorStoreMagic = 0x50414e56;  // "PANV"
// v2: checksummed header + lazy per-block row CRCs. v1 files (no checksums)
// remain loadable; the writer always emits v2.
inline constexpr std::uint32_t kVectorStoreVersion = 2;
inline constexpr std::size_t kVectorStoreHeaderBytesV1 = 32;
inline constexpr std::size_t kVectorStoreHeaderBytesV2 = 40;
// Target bytes of row data per checksum block (the lazy-verification
// granule). One block is the most a single row() access ever checksums.
inline constexpr std::uint64_t kVectorStoreBlockBytes = 256 * 1024;

inline std::uint64_t vector_store_block_rows(std::uint64_t row_bytes) {
  if (row_bytes == 0) return 1;
  const std::uint64_t rows = kVectorStoreBlockBytes / row_bytes;
  return rows == 0 ? 1 : rows;
}
}  // namespace internal

template <typename T>
constexpr std::uint32_t vector_store_dtype_code();
template <>
constexpr std::uint32_t vector_store_dtype_code<float>() { return 0; }
template <>
constexpr std::uint32_t vector_store_dtype_code<std::uint8_t>() { return 1; }
template <>
constexpr std::uint32_t vector_store_dtype_code<std::int8_t>() { return 2; }

// Write a PANV v2 vector store holding all rows of `points` (unpadded).
// Atomic: the file appears at `path` complete or not at all.
template <typename T>
void write_vector_store(const std::string& path, const PointSet<T>& points) {
  ioutil::AtomicFileWriter out(path);
  std::FILE* f = out.file();
  // The checksummed 32-byte header prefix, assembled in memory so its CRC
  // is computed over exactly the bytes written.
  unsigned char head[internal::kVectorStoreHeaderBytesV1];
  const std::uint32_t h32[4] = {internal::kVectorStoreMagic,
                                internal::kVectorStoreVersion,
                                vector_store_dtype_code<T>(),
                                static_cast<std::uint32_t>(sizeof(T))};
  const std::uint64_t n = points.size();
  const std::uint64_t d = points.dims();
  std::memcpy(head, h32, 16);
  std::memcpy(head + 16, &n, 8);
  std::memcpy(head + 24, &d, 8);
  ioutil::write_bytes(f, head, sizeof(head), path);
  ioutil::write_u32(f, crc32c::value(head, sizeof(head)), path);
  ioutil::write_u32(f, 0, path);  // pad (validated as zero on open)
  const std::uint64_t row_bytes = d * sizeof(T);
  const std::uint64_t block_rows = internal::vector_store_block_rows(row_bytes);
  std::vector<std::uint32_t> block_crcs;
  std::uint32_t crc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const T* row = points[static_cast<PointId>(i)];
    ioutil::write_bytes(f, row, row_bytes, path);
    crc = crc32c::extend(crc, row, row_bytes);
    if ((i + 1) % block_rows == 0 || i + 1 == n) {
      block_crcs.push_back(crc);
      crc = 0;
    }
  }
  ioutil::write_u32(f, static_cast<std::uint32_t>(block_rows), path);
  ioutil::write_u32(f, static_cast<std::uint32_t>(block_crcs.size()), path);
  for (std::uint32_t c : block_crcs) ioutil::write_u32(f, c, path);
  out.commit();
}

// Read-only mmap over a PANV file. Move-only; the mapping lives as long as
// the store object (unlinking the file underneath it is safe on POSIX).
template <typename T>
class MmapVectorStore {
 public:
  explicit MmapVectorStore(const std::string& path) : path_(path) {
    if (faultinject::should_fail("mmap.map")) {
      throw io_error("injected mmap failure: " + path);
    }
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      throw io_error("cannot open vector store: " + path);
    }
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      ::close(fd_);
      throw io_error("cannot stat vector store: " + path);
    }
    const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size < internal::kVectorStoreHeaderBytesV1) {
      ::close(fd_);
      throw corrupt_data(
          "vector store truncated (smaller than its header): " + path);
    }
    void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (map == MAP_FAILED) {
      ::close(fd_);
      throw io_error("cannot mmap vector store: " + path);
    }
    base_ = map;
    mapped_bytes_ = file_size;
    try {
      const unsigned char* hb = static_cast<const unsigned char*>(map);
      std::uint32_t h32[4];
      std::memcpy(h32, hb, sizeof(h32));
      if (h32[0] != internal::kVectorStoreMagic) {
        throw corrupt_data("not a vector store (bad magic): " + path);
      }
      if (h32[1] != 1 && h32[1] != internal::kVectorStoreVersion) {
        throw corrupt_data("unsupported vector store version: " + path);
      }
      const bool v2 = h32[1] == internal::kVectorStoreVersion;
      if (h32[2] != vector_store_dtype_code<T>() || h32[3] != sizeof(T)) {
        throw corrupt_data("vector store element type mismatch: " + path);
      }
      std::uint64_t n64 = 0, d64 = 0;
      std::memcpy(&n64, hb + 16, sizeof(n64));
      std::memcpy(&d64, hb + 24, sizeof(d64));
      if (d64 == 0 || d64 > (1ull << 24) || n64 > (1ull << 48) / d64) {
        throw corrupt_data("corrupt vector store header: " + path);
      }
      const std::size_t header_bytes =
          v2 ? internal::kVectorStoreHeaderBytesV2
             : internal::kVectorStoreHeaderBytesV1;
      if (v2) {
        if (file_size < internal::kVectorStoreHeaderBytesV2) {
          throw corrupt_data(
              "vector store truncated (smaller than its header): " + path);
        }
        std::uint32_t stored_crc = 0, pad = 0;
        std::memcpy(&stored_crc, hb + 32, 4);
        std::memcpy(&pad, hb + 36, 4);
        // The CRC covers the first 32 bytes; the pad must be zero so every
        // header byte is either covered or constrained.
        if (stored_crc !=
                crc32c::value(hb, internal::kVectorStoreHeaderBytesV1) ||
            pad != 0) {
          throw corrupt_data("vector store header failed its checksum: " +
                             path);
        }
      }
      const std::uint64_t row_bytes = d64 * sizeof(T);
      const std::uint64_t data_bytes = n64 * row_bytes;
      std::uint64_t expected = header_bytes + data_bytes;
      if (v2) {
        // The trailing block-CRC table: sized by the same formula the
        // writer used, so a flipped block_rows/num_blocks almost always
        // breaks the exact-size check below.
        if (file_size < expected + 8) {
          throw corrupt_data(
              "vector store truncated (missing checksum table): " + path);
        }
        std::uint32_t block_rows32 = 0, num_blocks32 = 0;
        std::memcpy(&block_rows32, hb + expected, 4);
        std::memcpy(&num_blocks32, hb + expected + 4, 4);
        if (block_rows32 == 0) {
          throw corrupt_data("corrupt vector store checksum table: " + path);
        }
        const std::uint64_t want_blocks =
            n64 == 0 ? 0 : (n64 + block_rows32 - 1) / block_rows32;
        if (num_blocks32 != want_blocks) {
          throw corrupt_data("corrupt vector store checksum table: " + path);
        }
        block_rows_ = block_rows32;
        num_blocks_ = num_blocks32;
        block_crcs_ = reinterpret_cast<const std::uint32_t*>(hb + expected + 8);
        expected += 8 + 4ull * num_blocks32;
      }
      if (file_size < expected) {
        throw corrupt_data(
            "vector store truncated (header promises more rows than the "
            "file holds): " + path);
      }
      if (file_size > expected) {
        throw corrupt_data(
            "vector store size mismatch (trailing bytes): " + path);
      }
      n_ = n64;
      d_ = d64;
      expected_bytes_ = expected;
      data_ = reinterpret_cast<const T*>(hb + header_bytes);
      if (num_blocks_ != 0) {
        block_verified_.reset(new std::atomic<unsigned char>[num_blocks_]);
        for (std::size_t b = 0; b < num_blocks_; ++b) {
          block_verified_[b].store(0, std::memory_order_relaxed);
        }
      }
    } catch (...) {
      ::munmap(base_, mapped_bytes_);
      ::close(fd_);
      base_ = nullptr;
      throw;
    }
  }

  ~MmapVectorStore() {
    if (base_ != nullptr) {
      ::munmap(base_, mapped_bytes_);
      ::close(fd_);
    }
  }

  MmapVectorStore(const MmapVectorStore&) = delete;
  MmapVectorStore& operator=(const MmapVectorStore&) = delete;

  MmapVectorStore(MmapVectorStore&& o) noexcept
      : path_(std::move(o.path_)),
        base_(std::exchange(o.base_, nullptr)),
        mapped_bytes_(std::exchange(o.mapped_bytes_, 0)),
        fd_(std::exchange(o.fd_, -1)),
        data_(std::exchange(o.data_, nullptr)),
        n_(std::exchange(o.n_, 0)),
        d_(std::exchange(o.d_, 0)),
        expected_bytes_(std::exchange(o.expected_bytes_, 0)),
        block_rows_(std::exchange(o.block_rows_, 0)),
        num_blocks_(std::exchange(o.num_blocks_, 0)),
        block_crcs_(std::exchange(o.block_crcs_, nullptr)),
        block_verified_(std::move(o.block_verified_)) {}

  MmapVectorStore& operator=(MmapVectorStore&& o) noexcept {
    if (this != &o) {
      if (base_ != nullptr) {
        ::munmap(base_, mapped_bytes_);
        ::close(fd_);
      }
      path_ = std::move(o.path_);
      base_ = std::exchange(o.base_, nullptr);
      mapped_bytes_ = std::exchange(o.mapped_bytes_, 0);
      fd_ = std::exchange(o.fd_, -1);
      data_ = std::exchange(o.data_, nullptr);
      n_ = std::exchange(o.n_, 0);
      d_ = std::exchange(o.d_, 0);
      expected_bytes_ = std::exchange(o.expected_bytes_, 0);
      block_rows_ = std::exchange(o.block_rows_, 0);
      num_blocks_ = std::exchange(o.num_blocks_, 0);
      block_crcs_ = std::exchange(o.block_crcs_, nullptr);
      block_verified_ = std::move(o.block_verified_);
    }
    return *this;
  }

  std::size_t size() const { return n_; }
  std::size_t dims() const { return d_; }
  const std::string& path() const { return path_; }

  const T* row(PointId i) const {
    if (i >= n_) {
      throw std::out_of_range("MmapVectorStore::row: id " +
                              std::to_string(i) + " out of range (" +
                              std::to_string(n_) + " rows): " + path_);
    }
    if (faultinject::enabled()) {
      if (faultinject::should_fail("mmap.row")) {
        throw io_error("injected row read fault: " + path_);
      }
      // Truncated-under-mmap is normally a SIGBUS (unrecoverable without
      // signal games); under an active injection scope, re-stat the still-
      // open fd so the harness can prove the typed-error path instead.
      struct stat st{};
      if (::fstat(fd_, &st) != 0 ||
          static_cast<std::uint64_t>(st.st_size) < expected_bytes_) {
        throw corrupt_data("vector store truncated under mmap: " + path_);
      }
    }
    if (num_blocks_ != 0) verify_block(i / block_rows_);
    return data_ + static_cast<std::size_t>(i) * d_;
  }

  // Bytes of the file mapping — file-backed and evictable, so NOT part of
  // the resident-memory accounting (that is the whole point of the tier);
  // reported separately in stats details.
  std::size_t mapped_bytes() const { return mapped_bytes_; }

 private:
  // First access into a block checksums all of it against the table (one
  // ~256 KiB pass, amortized over every later access); a mismatch is a bit
  // flip or torn write in the backing file. Concurrent first accesses may
  // both verify — idempotent, and cheaper than a lock on every row().
  void verify_block(std::uint64_t b) const {
    if (block_verified_[b].load(std::memory_order_acquire) != 0) return;
    const std::uint64_t row_bytes = d_ * sizeof(T);
    const std::uint64_t first = b * block_rows_;
    const std::uint64_t rows = std::min<std::uint64_t>(block_rows_, n_ - first);
    const unsigned char* begin =
        reinterpret_cast<const unsigned char*>(data_) + first * row_bytes;
    if (crc32c::value(begin, rows * row_bytes) != block_crcs_[b]) {
      throw corrupt_data("vector store checksum mismatch in block " +
                         std::to_string(b) + " of " +
                         std::to_string(num_blocks_) + ": " + path_);
    }
    block_verified_[b].store(1, std::memory_order_release);
  }

  std::string path_;
  void* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  int fd_ = -1;  // kept open for truncation re-checks under fault injection
  const T* data_ = nullptr;
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::uint64_t expected_bytes_ = 0;
  // v2 lazy verification state (num_blocks_ == 0 for v1 files: no table,
  // nothing to verify).
  std::uint64_t block_rows_ = 0;
  std::size_t num_blocks_ = 0;
  const std::uint32_t* block_crcs_ = nullptr;
  mutable std::unique_ptr<std::atomic<unsigned char>[]> block_verified_;
};

}  // namespace ann
