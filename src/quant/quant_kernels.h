// Shared compressed-domain distance kernels for the quantized tier
// (src/quant/) and the IVF_PQ scan (src/ivf/) — ONE implementation of the
// ADC inner loop, so the two paths cannot drift apart.
//
// Determinism contract (the ADC analogue of core/distance.h's fixed-lane
// float kernels): adc_sum accumulates the per-subspace table entries in
// SEQUENTIAL SUBSPACE ORDER, always. The loop is gather-bound — each term is
// a data-dependent table lookup — so unlike the dense float kernels there is
// no throughput to win by multi-lane reassociation, and keeping the plain
// sequential order makes the quantized traversal bit-identical to the
// historical pq.h scan and across worker counts. The int8 kernels accumulate
// in integer arithmetic, which is exact and associative, so their order is
// free (mirroring the plain-loop integer finding in core/distance.h).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ann::quant {

// ADC table-lookup sum for one m-byte PQ code row against a prepared query
// table (m x width floats, row s holding subspace s's subdistances).
// THE deterministic ADC accumulation order — see the header comment.
inline float adc_sum(const float* table, std::size_t width,
                     const std::uint8_t* code, std::uint32_t m) {
  float acc = 0.0f;
  for (std::uint32_t s = 0; s < m; ++s) {
    acc += table[s * width + code[s]];
  }
  return acc;
}

// Squared L2 between two int8 code rows. Exact integer accumulation: for
// uint8 data stored as (x - 128) the offset cancels in the difference, so
// this reproduces the full-precision integer distance bit-for-bit.
inline std::int64_t i8_l2(const std::int8_t* a, const std::int8_t* b,
                          std::size_t d) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < d; ++j) {
    std::int32_t diff =
        static_cast<std::int32_t>(a[j]) - static_cast<std::int32_t>(b[j]);
    acc += static_cast<std::int64_t>(diff) * diff;
  }
  return acc;
}

// Inner product between two int8 code rows (exact integer accumulation).
inline std::int64_t i8_dot(const std::int8_t* a, const std::int8_t* b,
                           std::size_t d) {
  std::int64_t acc = 0;
  for (std::size_t j = 0; j < d; ++j) {
    acc += static_cast<std::int64_t>(a[j]) * static_cast<std::int64_t>(b[j]);
  }
  return acc;
}

}  // namespace ann::quant
