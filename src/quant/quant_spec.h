// Configuration for AnyIndex::attach_quantized — split from
// quantized_store.h so the api layer can name the spec in its capability
// virtuals without pulling the store implementation into every consumer.
#pragma once

#include <cstdint>
#include <string>

#include "ivf/pq.h"  // PQParams

namespace ann {

enum class QuantKind : std::uint32_t {
  kPQ = 0,    // product quantization: m code bytes per point + codebooks
  kInt8 = 1,  // scalar quantization: d int8 codes per point, global scale
};

// attach_quantized(spec): train a compressed code store over the index's
// points and enable the quantized traversal path.
struct QuantizedSpec {
  QuantKind kind = QuantKind::kPQ;

  // kPQ only: codebook training parameters (reuses src/ivf/pq.h).
  PQParams pq{};

  // Optional PANV full-precision store (quant/mmap_store.h) used as the
  // exact-rerank source; must hold exactly the index's rows (shape-checked
  // at attach). Empty = rerank reads the in-RAM rows instead.
  std::string vectors_path;

  // Drop the in-RAM full-precision rows after training — the memory-budget
  // mode. Full-precision search/range_search/filtered_search then throw
  // ann::unsupported_operation; rerank (and save) need vectors_path. With
  // no vectors_path this is the codes-only tier: quantized search still
  // works, but rerank_count > 0 and save() throw.
  bool evict_raw = false;
};

}  // namespace ann
