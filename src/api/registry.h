// ann::Registry — the factory behind ann::make_index. Backends register
// under the (algorithm, metric, dtype) string triple; creation is a runtime
// string lookup, so serving code can build any index from configuration:
//
//   auto index = ann::make_index("diskann", "euclidean", "float", spec);
//
// The builtin backends (diskann, hnsw, hcnng, pynndescent, ivf_flat,
// ivf_pq, lsh — see src/api/adapters.h) are registered on first use via
// ensure_builtin_backends(), compiled once into the core library. External
// backends self-register from a .cpp with one macro:
//
//   ANN_REGISTER_INDEX("my_algo", "euclidean", "float", [](const IndexSpec& s) {
//     return std::make_unique<MyBackend>(s);
//   });
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "api/any_index.h"
#include "api/index_spec.h"
#include "core/index_io.h"

namespace ann {

class Registry {
 public:
  using Factory =
      std::function<std::unique_ptr<BackendBase>(const IndexSpec&)>;

  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  // Last registration wins, so a plugin can deliberately override a builtin.
  void register_backend(const std::string& algorithm, const std::string& metric,
                        const std::string& dtype, Factory factory) {
    factories_[key(algorithm, metric, dtype)] = std::move(factory);
  }

  // Registers only if the triple is free. The lazily-run builtin
  // registration uses this so it can never clobber an external backend
  // registered at static-init time under a builtin triple.
  void register_backend_if_absent(const std::string& algorithm,
                                  const std::string& metric,
                                  const std::string& dtype, Factory factory) {
    factories_.try_emplace(key(algorithm, metric, dtype), std::move(factory));
  }

  bool contains(const std::string& algorithm, const std::string& metric,
                const std::string& dtype) const {
    return factories_.count(
               key(algorithm, normalize_metric(metric),
                   normalize_dtype(dtype))) != 0;
  }

  // Distinct registered algorithm names, sorted.
  std::vector<std::string> algorithms() const {
    std::vector<std::string> names;
    for (const auto& [k, factory] : factories_) {
      std::string name = k.substr(0, k.find('/'));
      if (names.empty() || names.back() != name) names.push_back(name);
    }
    return names;
  }

  std::unique_ptr<BackendBase> create(const IndexSpec& spec) const {
    auto it = factories_.find(key(spec.algorithm, spec.metric, spec.dtype));
    if (it == factories_.end()) {
      std::string known;
      for (const auto& name : algorithms()) {
        known += known.empty() ? name : ", " + name;
      }
      throw std::invalid_argument(
          "no index backend registered for algorithm='" + spec.algorithm +
          "' metric='" + spec.metric + "' dtype='" + spec.dtype +
          "' (registered algorithms: " + known + ")");
    }
    return it->second(spec);
  }

 private:
  static std::string key(const std::string& algorithm,
                         const std::string& metric, const std::string& dtype) {
    return algorithm + "/" + metric + "/" + dtype;
  }

  std::map<std::string, Factory> factories_;
};

// Registers the builtin backends exactly once (idempotent, cheap after the
// first call). Defined in src/api/builtin_backends.cpp so the template
// instantiations compile once into the core library instead of into every
// consumer translation unit.
void ensure_builtin_backends();

inline AnyIndex make_index(IndexSpec spec) {
  ensure_builtin_backends();
  spec.metric = normalize_metric(spec.metric);
  spec.dtype = normalize_dtype(spec.dtype);
  // A spec carrying a different algorithm's params would otherwise be
  // silently dropped (params_or falls back to defaults) — reject it.
  if (!params_match_algorithm(spec.algorithm, spec.params)) {
    throw std::invalid_argument(
        "IndexSpec.params holds a different algorithm's parameter struct "
        "than algorithm='" + spec.algorithm + "'");
  }
  auto impl = Registry::instance().create(spec);
  return AnyIndex(std::move(spec), std::move(impl));
}

inline AnyIndex make_index(const std::string& algorithm,
                           const std::string& metric, const std::string& dtype,
                           IndexSpec spec = {}) {
  spec.algorithm = algorithm;
  spec.metric = metric;
  spec.dtype = dtype;
  return make_index(std::move(spec));
}

// --- container round-trip ----------------------------------------------------

inline void AnyIndex::save(const std::string& path) const {
  require_impl("save");
  // Crash safety has two independent halves: the AtomicFileWriter makes the
  // rename-publish all-or-nothing (a crash mid-save leaves the old container
  // untouched at `path`), and the checksum trailer makes any corruption that
  // slips past it — a torn write on a non-atomic filesystem, a bit flip at
  // rest — detectable at load. Section boundaries are the ftell after each
  // payload; the trailer is computed by re-reading the temp file, so the
  // CRCs cover the bytes actually on disk.
  ioutil::AtomicFileWriter out(path);
  IndexContainerHeader header{spec_.algorithm, spec_.metric, spec_.dtype,
                              serialize_params(spec_.params)};
  // Attribution metadata: float distances (and cosine, which is float math
  // for every dtype) may differ in the last ulps across SIMD kernel tiers,
  // so such containers record the tier that produced their bytes
  // (docs/SIMD.md). Integer euclidean/neg-ip containers are bit-identical
  // across tiers by contract — writing the tier there would break exactly
  // that byte-identity, so the key is omitted. Loaders ignore unknown keys.
  if (spec_.dtype == "float" || spec_.metric == "cosine") {
    header.params.emplace_back("simd_tier",
                               static_cast<double>(simd::active_tier()));
  }
  std::vector<long> boundaries;
  write_container_header(out.file(), header, path);
  boundaries.push_back(std::ftell(out.file()));
  impl_->save_payload(out.file(), path);
  boundaries.push_back(std::ftell(out.file()));
  // Optional payloads trail the backend payload in a fixed order (labels,
  // then quant); each is absent when the feature is unattached.
  if (labels_) {
    write_label_store_payload(out.file(), *labels_, path);
    boundaries.push_back(std::ftell(out.file()));
  }
  if (impl_->has_quantized()) {
    impl_->save_quantized_payload(out.file(), path);
    boundaries.push_back(std::ftell(out.file()));
  }
  write_checksum_trailer(out.file(), boundaries, path);
  out.commit();
}

inline AnyIndex AnyIndex::load(const std::string& path) {
  auto f = internal::open_index_file(path, "rb");
  // Peek the version, then verify EVERY section checksum before parsing a
  // single payload byte: a corrupt v2 container is rejected as
  // ann::corrupt_data up front, never fed to a payload reader. v1 files
  // carry no trailer — they load with no verification to run.
  if (ioutil::read_u32(f.get(), path) != internal::kContainerMagic) {
    throw corrupt_data("not an ann index container: " + path);
  }
  const std::uint32_t version = ioutil::read_u32(f.get(), path);
  if (version != 1 && version != internal::kContainerVersion) {
    throw corrupt_data("unsupported container version: " + path);
  }
  if (version >= 2) verify_container_checksums(f.get(), path);
  if (std::fseek(f.get(), 0, SEEK_SET) != 0) {
    throw corrupt_data("cannot seek container: " + path);
  }
  IndexContainerHeader header = read_container_header(f.get(), path);
  IndexSpec spec;
  spec.algorithm = header.algorithm;
  spec.metric = header.metric;
  spec.dtype = header.dtype;
  spec.params = params_from_kv(header.algorithm, header.params);
  AnyIndex index = make_index(std::move(spec));
  index.impl_->load_payload(f.get(), path);
  // Dispatch the optional trailing payloads by magic probe. v1 files end
  // right after the last payload (clean EOF); v2 files end at the checksum
  // trailer, whose magic stops the probe. The 4-byte probe is pushed back
  // with fseek (ungetc guarantees only one byte) — index containers are
  // regular files.
  for (;;) {
    std::uint32_t magic = 0;
    std::size_t got = std::fread(&magic, 1, sizeof(magic), f.get());
    if (got == 0) break;  // clean EOF: no more payloads
    if (magic == internal::kChecksumTrailerMagic) break;  // v2 trailer
    if (got != sizeof(magic) ||
        std::fseek(f.get(), -static_cast<long>(got), SEEK_CUR) != 0) {
      throw corrupt_data("corrupt trailing payload: " + path);
    }
    if (magic == internal::kLabelStoreMagic) {
      index.attach_labels(read_label_store_payload(f.get(), path));
    } else if (magic == internal::kQuantStoreMagic) {
      index.impl_->load_quantized_payload(f.get(), path);
    } else {
      throw corrupt_data("unknown trailing payload in index container: " +
                         path);
    }
  }
  return index;
}

// Self-registration for external backends; use from a .cpp file.
#define ANN_CONCAT_INNER(a, b) a##b
#define ANN_CONCAT(a, b) ANN_CONCAT_INNER(a, b)
#define ANN_REGISTER_INDEX(algorithm, metric, dtype, ...)                \
  namespace {                                                            \
  const bool ANN_CONCAT(ann_index_registration_, __COUNTER__) =          \
      (::ann::Registry::instance().register_backend(                     \
           (algorithm), ::ann::normalize_metric(metric),                 \
           ::ann::normalize_dtype(dtype), __VA_ARGS__),                  \
       true);                                                            \
  }

}  // namespace ann
