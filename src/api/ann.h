// The public API in one include.
//
//   #include "api/ann.h"
//
//   ann::IndexSpec spec{.algorithm = "diskann", .metric = "euclidean",
//                       .dtype = "uint8",
//                       .params = ann::DiskANNParams{.degree_bound = 32}};
//   ann::AnyIndex index = ann::make_index(spec);
//   index.build(points);                                  // PointSet<uint8_t>
//   auto hits = index.search(query, {.beam_width = 40, .k = 10});
//   index.save("index.pann");                             // ...later...
//   auto served = ann::AnyIndex::load("index.pann");      // any algorithm
//
// Algorithms: diskann, hnsw, hcnng, pynndescent, ivf_flat, ivf_pq, lsh.
// Metrics:    euclidean, mips, cosine (ivf_pq: euclidean and mips only).
// Dtypes:     float, uint8, int8.
#pragma once

#include "api/any_index.h"
#include "api/index_spec.h"
#include "api/registry.h"
