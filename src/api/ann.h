// The public API in one include.
//
//   #include "api/ann.h"
//
//   ann::IndexSpec spec{.algorithm = "diskann", .metric = "euclidean",
//                       .dtype = "uint8",
//                       .params = ann::DiskANNParams{.degree_bound = 32}};
//   ann::AnyIndex index = ann::make_index(spec);
//   index.build(points);                                  // PointSet<uint8_t>
//   auto hits = index.search(query, {.beam_width = 40, .k = 10});
//   index.save("index.pann");                             // ...later...
//   auto served = ann::AnyIndex::load("index.pann");      // any algorithm
//
// Mutable indexes (backends that opt in, e.g. dynamic_diskann):
//
//   auto dyn = ann::make_index("dynamic_diskann", "euclidean", "uint8");
//   dyn.insert(batch);            // initial load and growth, same call
//   dyn.erase(ids);               // tombstone; never returned again
//   dyn.consolidate();            // maintenance: splice tombstones out
//   dyn.save("dyn.pann");         // update state persists too
//
// Filtered search (labels + predicates, src/filter/ — guide: docs/FILTERS.md):
//
//   ann::LabelStore labels;                    // one label set per point
//   for (...) labels.add_point_names({"shoes", "red"});
//   index.attach_labels(std::move(labels));    // persists through save/load
//   auto spec = ann::FilterSpec::match_any(index.labels(), {"shoes"});
//   auto hits = index.filtered_search(query, spec, {.beam_width = 40, .k = 10});
//
// Every backend serves filtered_search/filtered_batch_search: graph
// backends filter inside the traversal (supports_native_filtering()), the
// bucketed baselines over-fetch and post-filter.
//
// Algorithms: diskann, dynamic_diskann, sharded_diskann, hnsw, hcnng,
//             pynndescent, ivf_flat, ivf_pq, lsh.
// Metrics:    euclidean, mips, cosine (ivf_pq: euclidean and mips only).
// Dtypes:     float, uint8, int8.
//
// Serving (one layer up, include "serve/search_service.h"):
//
//   auto service = ann::serve<std::uint8_t>(std::move(index),
//                                           {.max_batch = 64});
//   auto future = service->submit(query, {.beam_width = 40, .k = 10});
//
// ann::SearchService is the async batching front end over batch_search —
// submission queue, adaptive micro-batcher, backpressure, latency stats.
// Operator guide: docs/SERVING.md; layer map: docs/ARCHITECTURE.md.
#pragma once

#include "api/any_index.h"
#include "api/index_spec.h"
#include "api/registry.h"
