// Backend adapters: one TypedBackend<T> implementation per index family,
// bridging the per-algorithm builders onto the uniform AnyIndex surface.
//
// QueryParams mapping (QueryParams is beam_search.h's SearchParams):
//   * graph backends (diskann, hnsw, hcnng, pynndescent): used verbatim as
//     the beam-search parameters;
//   * ivf_flat / ivf_pq: beam_width is the effort knob -> nprobe (clamped to
//     the centroid count inside the scan);
//   * lsh: beam_width -> multiprobe buckets per table (clamped to num_bits).
//
// range_search: graph backends run core/range_search.h's beam+flood; the
// bucketed backends (ivf_flat, ivf_pq, lsh) fall back to an exact linear
// scan over their owned points — correct for any radius, and these
// baselines have no graph to flood through.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/any_index.h"
#include "api/index_spec.h"
#include "core/index_io.h"
#include "core/range_search.h"
#include "ivf/ivf_flat.h"
#include "ivf/ivf_pq.h"
#include "lsh/lsh.h"

namespace ann {

namespace adapters {

// Exact range scan used by the bucketed backends.
template <typename Metric, typename T>
std::vector<Neighbor> exact_range_scan(const PointSet<T>& points,
                                       const T* query, float radius) {
  std::vector<Neighbor> matches;
  for (std::size_t i = 0; i < points.size(); ++i) {
    float d = Metric::distance(query, points[static_cast<PointId>(i)],
                               points.dims());
    if (d <= radius) matches.push_back({static_cast<PointId>(i), d});
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

// --- flat-graph backends (diskann / hcnng / pynndescent) ---------------------

template <typename Metric, typename T, typename Params>
class FlatGraphBackend final : public TypedBackend<T> {
 public:
  using Builder = GraphIndex<Metric, T> (*)(const PointSet<T>&, const Params&);

  FlatGraphBackend(Params params, Builder builder)
      : params_(std::move(params)), builder_(builder) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = builder_(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    auto res = index_.query_full(query, points_, params);
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    std::vector<PointId> starts{index_.start};
    return ann::range_search<Metric>(query, points_, index_.graph, starts,
                                     params)
        .matches;
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    write_graph_index_payload(f, index_, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = read_graph_index_payload<Metric, T>(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.details = {
        {"num_edges", static_cast<double>(index_.graph.num_edges())},
        {"max_degree", static_cast<double>(index_.graph.max_degree())},
        {"start", static_cast<double>(index_.start)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  Params params_;
  Builder builder_;
  PointSet<T> points_;
  GraphIndex<Metric, T> index_;
};

// --- hnsw --------------------------------------------------------------------

template <typename Metric, typename T>
class HNSWBackend final : public TypedBackend<T> {
 public:
  explicit HNSWBackend(HNSWParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = build_hnsw<Metric>(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    auto res = index_.query_full(query, points_, params);
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    // Descend the hierarchy to the bottom layer, then beam+flood there.
    std::vector<PointId> starts{index_.descend_to(query, points_, 0)};
    return ann::range_search<Metric>(query, points_, index_.layers[0], starts,
                                     params)
        .matches;
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    write_hnsw_index_payload(f, index_, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = read_hnsw_index_payload<Metric, T>(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    std::size_t bottom_edges =
        index_.layers.empty() ? 0 : index_.layers[0].num_edges();
    s.details = {{"num_layers", static_cast<double>(index_.layers.size())},
                 {"entry_level", static_cast<double>(index_.entry_level)},
                 {"bottom_edges", static_cast<double>(bottom_edges)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  HNSWParams params_;
  PointSet<T> points_;
  HNSWIndex<Metric, T> index_;
};

// --- ivf_flat ----------------------------------------------------------------

template <typename Metric, typename T>
class IVFFlatBackend final : public TypedBackend<T> {
 public:
  explicit IVFFlatBackend(IVFParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = IVFFlat<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    IVFQueryParams qp{.nprobe = std::max<std::uint32_t>(params.beam_width, 1),
                      .k = params.k};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = IVFFlat<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.details = {{"num_lists", static_cast<double>(index_.num_lists())}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  IVFParams params_;
  PointSet<T> points_;
  IVFFlat<Metric, T> index_;
};

// --- ivf_pq ------------------------------------------------------------------

template <typename Metric, typename T>
class IVFPQBackend final : public TypedBackend<T> {
 public:
  explicit IVFPQBackend(IVFPQParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = IVFPQ<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    IVFQueryParams qp{.nprobe = std::max<std::uint32_t>(params.beam_width, 1),
                      .k = params.k};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = IVFPQ<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.details = {
        {"num_subspaces", static_cast<double>(index_.quantizer().num_subspaces())},
        {"rerank", static_cast<double>(params_.rerank)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  IVFPQParams params_;
  PointSet<T> points_;
  IVFPQ<Metric, T> index_;
};

// --- lsh ---------------------------------------------------------------------

template <typename Metric, typename T>
class LSHBackend final : public TypedBackend<T> {
 public:
  explicit LSHBackend(LSHParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = LSHIndex<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    LSHQueryParams qp{.k = params.k,
                      .multiprobe =
                          std::min(params.beam_width, params_.num_bits)};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = LSHIndex<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.details = {{"num_tables", static_cast<double>(index_.num_tables())},
                 {"num_bits", static_cast<double>(params_.num_bits)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  LSHParams params_;
  PointSet<T> points_;
  LSHIndex<Metric, T> index_;
};

}  // namespace adapters

}  // namespace ann
