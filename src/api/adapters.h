// Backend adapters: one TypedBackend<T> implementation per index family,
// bridging the per-algorithm builders onto the uniform AnyIndex surface.
//
// QueryParams mapping (QueryParams is beam_search.h's SearchParams):
//   * graph backends (diskann, hnsw, hcnng, pynndescent): used verbatim as
//     the beam-search parameters;
//   * ivf_flat / ivf_pq: beam_width is the effort knob -> nprobe (clamped to
//     the centroid count inside the scan);
//   * lsh: beam_width -> multiprobe buckets per table (clamped to num_bits).
//
// range_search: graph backends run core/range_search.h's beam+flood; the
// bucketed backends (ivf_flat, ivf_pq, lsh) fall back to an exact linear
// scan over their owned points — correct for any radius, and these
// baselines have no graph to flood through.
//
// DynamicDiskANNBackend is the one mutable adapter: it additionally derives
// from MutableTypedBackend<T>, mapping AnyIndex::insert/erase/consolidate
// onto DynamicDiskANN and persisting the tombstone state through the
// container's dynamic-state payload (core/index_io.h) so a mutated index
// round-trips through save/load.
//
// filtered_search: the graph adapters override it with traversal-level
// filtering (core/beam_search.h filtered_beam_search — the predicate gates
// result admission while filtered-out points still conduct the walk) and
// advertise supports_native_filtering(). The bucketed backends (ivf_flat,
// ivf_pq, lsh) keep TypedBackend's post-filter fallback: their shortlists
// are already formed by scanning closed candidate sets, so over-fetch +
// filter is the natural (and still deterministic) strategy there.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/dynamic_index.h"
#include "api/any_index.h"
#include "api/index_spec.h"
#include "core/index_io.h"
#include "core/range_search.h"
#include "ivf/ivf_flat.h"
#include "ivf/ivf_pq.h"
#include "lsh/lsh.h"
#include "quant/mmap_store.h"
#include "quant/quantized_store.h"

namespace ann {

namespace adapters {

// --- quantized tier shared by the graph adapters -----------------------------
//
// Owns the compressed code store, the optional mmap'd full-precision rerank
// source, and the eviction flag — the full DiskANN memory-budget state.
// FlatGraphBackend and HNSWBackend embed one and differ only in how they
// drive the traversal (flat graph vs hierarchy descent).
template <typename Metric, typename T>
class QuantizedTier {
 public:
  bool attached() const { return store_ != nullptr; }
  bool evicted() const { return evicted_; }
  const QuantizedStore<Metric, T>& store() const { return *store_; }

  // Train + install per `spec`. `points` is the backend's owned row storage;
  // with spec.evict_raw it is released here (the memory win). Re-attach
  // replaces the previous tier state wholesale.
  void attach(PointSet<T>& points, const QuantizedSpec& spec) {
    if constexpr (std::is_same_v<Metric, Cosine>) {
      (void)points;
      (void)spec;
      throw unsupported_operation(
          "attach_quantized: ADC does not decompose for the cosine metric "
          "(use euclidean or mips)");
    } else {
      if (points.size() == 0) {
        throw std::logic_error("attach_quantized on an empty index (build "
                               "or load first)");
      }
      auto store = std::make_unique<QuantizedStore<Metric, T>>(
          QuantizedStore<Metric, T>::build(points, spec));
      std::unique_ptr<MmapVectorStore<T>> vectors;
      if (!spec.vectors_path.empty()) {
        vectors = std::make_unique<MmapVectorStore<T>>(spec.vectors_path);
        if (vectors->size() != points.size() ||
            vectors->dims() != points.dims()) {
          throw std::invalid_argument(
              "attach_quantized: vector store " + spec.vectors_path +
              " holds " + std::to_string(vectors->size()) + "x" +
              std::to_string(vectors->dims()) + " but the index holds " +
              std::to_string(points.size()) + "x" +
              std::to_string(points.dims()));
        }
      }
      store_ = std::move(store);
      vectors_ = std::move(vectors);
      evicted_ = false;
      if (spec.evict_raw) {
        points = PointSet<T>();
        evicted_ = true;
      }
    }
  }

  // Restore a store from a container's PANQ payload (load path). Must agree
  // with the structure it rides on; the caller passes the index's shape.
  void load_store(std::FILE* f, const std::string& path, std::size_t n,
                  std::size_t d) {
    auto store = std::make_unique<QuantizedStore<Metric, T>>(
        QuantizedStore<Metric, T>::load_payload(f, path));
    if (store->size() != n || store->dims() != d) {
      throw std::runtime_error("quantized payload does not match index: " +
                               path);
    }
    store_ = std::move(store);
    vectors_.reset();
    evicted_ = false;
  }

  void save_store(std::FILE* f, const std::string& path) const {
    require_attached();
    store_->save_payload(f, path);
  }

  // Reset to "no tier" (fresh build/load replaces the index's points, so any
  // previously attached codes no longer describe them).
  void reset() {
    store_.reset();
    vectors_.reset();
    evicted_ = false;
  }

  void require_attached() const {
    if (!attached()) {
      throw unsupported_operation(
          "quantized search: no code store attached (attach_quantized)");
    }
  }

  // Guard for the full-precision paths of a budget-mode backend: once the
  // raw rows are evicted, only the quantized path can serve queries.
  void require_raw(const char* op) const {
    if (evicted_) {
      throw unsupported_operation(
          std::string(op) +
          ": full-precision rows were evicted (attach_quantized with "
          "evict_raw); use quantized_search");
    }
  }

  // Exact rerank of the frontier's top max(rerank_count, k) entries, from
  // the mmap store when present, else the in-RAM rows. The codes-only tier
  // (evicted, no vectors_path) cannot rerank — that is the unmapped-store
  // error path.
  void finish(const T* query, const QueryParams& params,
              const PointSet<T>& points, std::vector<Neighbor>& frontier) const {
    if (params.rerank_count > 0) {
      const std::size_t depth =
          std::max<std::size_t>(params.rerank_count, params.k);
      if (vectors_ != nullptr) {
        const MmapVectorStore<T>& vs = *vectors_;
        exact_rerank<Metric, T>(query, vs.dims(), frontier, depth,
                                [&](PointId id) { return vs.row(id); });
      } else if (!evicted_) {
        exact_rerank<Metric, T>(query, points.dims(), frontier, depth,
                                [&](PointId id) { return points[id]; });
      } else {
        throw unsupported_operation(
            "quantized_search: rerank_count > 0 but the full-precision rows "
            "were evicted and no vector store is mapped (codes-only tier)");
      }
    }
    if (frontier.size() > params.k) frontier.resize(params.k);
  }

  // Row source for save() on an evicted backend: the mmap store holds the
  // exact bytes the build saw, so the written file is identical to an
  // un-evicted save. Codes-only tiers cannot reconstruct rows.
  void write_points_from_store(std::FILE* f, const std::string& path) const {
    if (vectors_ == nullptr) {
      throw unsupported_operation(
          "save: full-precision rows were evicted and no vector store is "
          "mapped (codes-only tier cannot be persisted)");
    }
    ioutil::write_u64(f, vectors_->size(), path);
    ioutil::write_u64(f, vectors_->dims(), path);
    for (std::size_t i = 0; i < vectors_->size(); ++i) {
      ioutil::write_bytes(f, vectors_->row(static_cast<PointId>(i)),
                          vectors_->dims() * sizeof(T), path);
    }
  }

  // Resident bytes of the tier (codes + codebooks + corrections). The mmap
  // backing is file-backed and excluded — report it via mapped_bytes().
  std::size_t memory_bytes() const {
    return store_ != nullptr ? store_->memory_bytes() : 0;
  }
  std::size_t mapped_bytes() const {
    return vectors_ != nullptr ? vectors_->mapped_bytes() : 0;
  }

  void append_stats(IndexStats& s) const {
    s.details.emplace_back("quantized", attached() ? 1.0 : 0.0);
    if (attached()) {
      s.details.emplace_back("quant_kind",
                             static_cast<double>(store_->kind()));
      s.details.emplace_back("quant_bytes",
                             static_cast<double>(store_->memory_bytes()));
    }
    s.details.emplace_back("evicted", evicted_ ? 1.0 : 0.0);
    s.details.emplace_back("mapped_bytes",
                           static_cast<double>(mapped_bytes()));
  }

 private:
  std::unique_ptr<QuantizedStore<Metric, T>> store_;
  std::unique_ptr<MmapVectorStore<T>> vectors_;
  bool evicted_ = false;
};

// Exact range scan used by the bucketed backends (prepared-query kernels,
// one batched distance-count bump for the whole scan).
template <typename Metric, typename T>
std::vector<Neighbor> exact_range_scan(const PointSet<T>& points,
                                       const T* query, float radius) {
  const auto prep = Metric::prepare(query, points.dims());
  std::vector<Neighbor> matches;
  for (std::size_t i = 0; i < points.size(); ++i) {
    float d = Metric::eval(prep, query, points[static_cast<PointId>(i)],
                           points.dims());
    if (d <= radius) matches.push_back({static_cast<PointId>(i), d});
  }
  DistanceCounter::bump(points.size());
  std::sort(matches.begin(), matches.end());
  return matches;
}

// --- flat-graph backends (diskann / hcnng / pynndescent) ---------------------

template <typename Metric, typename T, typename Params>
class FlatGraphBackend final : public TypedBackend<T> {
 public:
  using Builder = GraphIndex<Metric, T> (*)(const PointSet<T>&, const Params&);

  FlatGraphBackend(Params params, Builder builder)
      : params_(std::move(params)), builder_(builder) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = builder_(points_, params_);
    tier_.reset();  // old codes (if any) no longer describe these points
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    tier_.require_raw("search");
    auto res = index_.query_full(query, points_, params);
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    tier_.require_raw("range_search");
    std::vector<PointId> starts{index_.start};
    return ann::range_search<Metric>(query, points_, index_.graph, starts,
                                     params)
        .matches;
  }

  bool supports_native_filtering() const override { return true; }

  std::vector<Neighbor> filtered_search(
      const T* query, const BoundFilter& filter,
      const QueryParams& params) const override {
    tier_.require_raw("filtered_search");
    std::vector<PointId> starts{index_.start};
    auto res = filtered_beam_search<Metric>(
        query, points_, index_.graph, starts, params,
        [&](PointId id) { return filter.matches(id); });
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  // --- quantized tier ---------------------------------------------------------

  bool supports_quantized_search() const override { return true; }
  bool has_quantized() const override { return tier_.attached(); }

  void attach_quantized(const QuantizedSpec& spec) override {
    tier_.attach(points_, spec);
  }

  void export_vector_store(const std::string& path) const override {
    tier_.require_raw("export_vector_store");
    write_vector_store(path, points_);
  }

  std::vector<Neighbor> quantized_search(
      const T* query, const QueryParams& params) const override {
    tier_.require_attached();
    SearchScratch& scratch = local_search_scratch();
    auto qv = tier_.store().bind(query, scratch);
    std::vector<PointId> starts{index_.start};
    auto res = quantized_beam_search(qv, index_.graph, starts, params,
                                     scratch);
    tier_.finish(query, params, points_, res.frontier);
    return std::move(res.frontier);
  }

  void save_quantized_payload(std::FILE* f,
                              const std::string& path) const override {
    tier_.save_store(f, path);
  }

  void load_quantized_payload(std::FILE* f, const std::string& path) override {
    tier_.load_store(f, path, points_.size(), points_.dims());
  }

  // ----------------------------------------------------------------------------

  void save_payload(std::FILE* f, const std::string& path) const override {
    if (tier_.evicted()) {
      // The mmap store holds the exact build-time bytes, so the file is
      // identical to an un-evicted save.
      tier_.write_points_from_store(f, path);
    } else {
      ioutil::write_points(f, points_, path);
    }
    write_graph_index_payload(f, index_, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = read_graph_index_payload<Metric, T>(f, path);
    tier_.reset();  // re-installed afterwards if the file carries a payload
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = num_points();
    s.dims = tier_.evicted() ? tier_.store().dims() : points_.dims();
    s.memory_bytes = points_.memory_bytes() + index_.graph.memory_bytes() +
                     tier_.memory_bytes();
    s.details = {
        {"num_edges", static_cast<double>(index_.graph.num_edges())},
        {"max_degree", static_cast<double>(index_.graph.max_degree())},
        {"start", static_cast<double>(index_.start)}};
    tier_.append_stats(s);
    return s;
  }

  std::size_t num_points() const override {
    // Budget mode drops the rows; the graph still spans every point.
    return tier_.evicted() ? index_.graph.size() : points_.size();
  }

 private:
  Params params_;
  Builder builder_;
  PointSet<T> points_;
  GraphIndex<Metric, T> index_;
  QuantizedTier<Metric, T> tier_;
};

// --- dynamic_diskann (the mutable backend) -----------------------------------

template <typename Metric, typename T>
class DynamicDiskANNBackend final : public TypedBackend<T>,
                                    public MutableTypedBackend<T> {
 public:
  explicit DynamicDiskANNBackend(DiskANNParams params)
      : params_(std::move(params)) {}

  // build == fresh index + one bulk insert: the dynamic machinery chunks the
  // batch internally, so a bulk load goes through the same deterministic
  // schedule an incremental load would. The by-value parameter is moved
  // straight into the index — no extra copy of the dataset.
  void build(PointSet<T> points) override {
    index_ = std::make_unique<Index>(points.dims(), params_);
    if (points.size() > 0) index_->insert(std::move(points));
  }

  PointId insert(const PointSet<T>& batch) override {
    // An empty index has no committed dims (e.g. a pre-insert save records
    // dims 0), so the first batch (re)establishes them.
    if (index_ == nullptr ||
        (index_->size() == 0 && index_->points().dims() != batch.dims())) {
      index_ = std::make_unique<Index>(batch.dims(), params_);
    } else if (batch.dims() != index_->points().dims()) {
      throw std::invalid_argument(
          "dynamic_diskann insert: batch has dims " +
          std::to_string(batch.dims()) + " but index holds dims " +
          std::to_string(index_->points().dims()));
    }
    return index_->insert(batch);
  }

  void erase(std::span<const PointId> ids) override {
    if (index_ != nullptr) index_->erase(ids);
  }

  void consolidate() override {
    if (index_ != nullptr) index_->consolidate();
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    auto out = index_->query_full(query, params);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    if (index_->start() == kInvalidPoint) return {};
    std::vector<PointId> starts{index_->start()};
    auto matches = ann::range_search<Metric>(query, index_->points(),
                                             index_->graph(), starts, params)
                       .matches;
    // Tombstones stay navigable but must never be returned.
    std::erase_if(matches,
                  [&](const Neighbor& nb) { return index_->is_deleted(nb.id); });
    return matches;
  }

  bool supports_native_filtering() const override { return true; }

  std::vector<Neighbor> filtered_search(
      const T* query, const BoundFilter& filter,
      const QueryParams& params) const override {
    if (index_->start() == kInvalidPoint) return {};
    // Tombstones are just another exclusion predicate here, so they compose
    // with the caller's filter. Fold the tombstone oversearch (query_full's
    // live-fraction widening) into the filter's traversal widening factor.
    QueryParams sp = params;
    double live_frac =
        static_cast<double>(std::max<std::size_t>(index_->num_live(), 1)) /
        static_cast<double>(std::max<std::size_t>(index_->size(), 1));
    sp.filter_beam_factor = std::max(params.filter_beam_factor, 1.0f) /
                            static_cast<float>(std::max(live_frac, 0.1));
    std::vector<PointId> starts{index_->start()};
    auto res = filtered_beam_search<Metric>(
        query, index_->points(), index_->graph(), starts, sp, [&](PointId id) {
          return !index_->is_deleted(id) && filter.matches(id);
        });
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    const Index& index = ensure_index();
    ioutil::write_points(f, index.points(), path);
    DynamicIndexState state{index.start(), index.deleted_flags()};
    write_dynamic_state_payload(f, state, path);
    write_graph_payload(f, index.graph(), path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    auto points = ioutil::read_points<T>(f, path);
    DynamicIndexState state = read_dynamic_state_payload(f, path);
    Graph graph = read_graph_payload(f, path);
    // Cross-payload consistency: a crafted/corrupt file must fail with a
    // clean error here, not an out-of-bounds read on the first search.
    if (graph.size() != points.size() ||
        state.deleted.size() != points.size() ||
        (state.start != kInvalidPoint && state.start >= points.size())) {
      throw std::runtime_error("corrupt dynamic index payload: " + path);
    }
    index_ = std::make_unique<Index>(points.dims(), params_);
    index_->restore(std::move(points), std::move(graph), state.start,
                    std::move(state.deleted));
  }

  IndexStats stats() const override {
    IndexStats s;
    if (index_ == nullptr) return s;
    s.num_points = index_->size();
    s.dims = index_->points().dims();
    s.memory_bytes = index_->points().memory_bytes() +
                     index_->graph().memory_bytes() +
                     index_->deleted_flags().capacity();
    s.details = {
        {"num_live", static_cast<double>(index_->num_live())},
        {"num_deleted", static_cast<double>(index_->num_deleted())},
        {"num_edges", static_cast<double>(index_->graph().num_edges())},
        {"max_degree", static_cast<double>(index_->graph().max_degree())},
        {"start", static_cast<double>(index_->start())}};
    return s;
  }

  std::size_t num_points() const override {
    return index_ == nullptr ? 0 : index_->size();
  }

 private:
  using Index = DynamicDiskANN<Metric, T>;

  // save_payload on a never-built handle still needs a (empty) index to
  // serialize; materialize one lazily. Dims are unknown until the first
  // batch, so an empty save records dims 0.
  const Index& ensure_index() const {
    if (index_ == nullptr) {
      const_cast<DynamicDiskANNBackend*>(this)->index_ =
          std::make_unique<Index>(0, params_);
    }
    return *index_;
  }

  DiskANNParams params_;
  std::unique_ptr<Index> index_;
};

// --- hnsw --------------------------------------------------------------------

template <typename Metric, typename T>
class HNSWBackend final : public TypedBackend<T> {
 public:
  explicit HNSWBackend(HNSWParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = build_hnsw<Metric>(points_, params_);
    tier_.reset();
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    tier_.require_raw("search");
    auto res = index_.query_full(query, points_, params);
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    tier_.require_raw("range_search");
    // Descend the hierarchy to the bottom layer, then beam+flood there.
    std::vector<PointId> starts{index_.descend_to(query, points_, 0)};
    return ann::range_search<Metric>(query, points_, index_.layers[0], starts,
                                     params)
        .matches;
  }

  bool supports_native_filtering() const override { return true; }

  std::vector<Neighbor> filtered_search(
      const T* query, const BoundFilter& filter,
      const QueryParams& params) const override {
    tier_.require_raw("filtered_search");
    // The upper layers only route; the predicate applies to the bottom-layer
    // beam, exactly where the unfiltered search forms its results.
    std::vector<PointId> starts{index_.descend_to(query, points_, 0)};
    auto res = filtered_beam_search<Metric>(
        query, points_, index_.layers[0], starts, params,
        [&](PointId id) { return filter.matches(id); });
    auto out = std::move(res.frontier);
    if (out.size() > params.k) out.resize(params.k);
    return out;
  }

  // --- quantized tier ---------------------------------------------------------

  bool supports_quantized_search() const override { return true; }
  bool has_quantized() const override { return tier_.attached(); }

  void attach_quantized(const QuantizedSpec& spec) override {
    tier_.attach(points_, spec);
  }

  void export_vector_store(const std::string& path) const override {
    tier_.require_raw("export_vector_store");
    write_vector_store(path, points_);
  }

  std::vector<Neighbor> quantized_search(
      const T* query, const QueryParams& params) const override {
    tier_.require_attached();
    SearchScratch& scratch = local_search_scratch();
    auto qv = tier_.store().bind(query, scratch);
    // The hierarchy descent runs in the compressed domain too (beam-1 ADC
    // per upper layer), so an evicted backend never needs coordinate rows.
    PointId cur = index_.entry;
    SearchParams one{.beam_width = 1, .k = 1};
    for (std::uint32_t l = index_.entry_level; l > 0; --l) {
      std::vector<PointId> st{cur};
      auto hop = quantized_beam_search(qv, index_.layers[l], st, one, scratch);
      if (!hop.frontier.empty()) cur = hop.frontier[0].id;
    }
    std::vector<PointId> starts{cur};
    auto res = quantized_beam_search(qv, index_.layers[0], starts, params,
                                     scratch);
    tier_.finish(query, params, points_, res.frontier);
    return std::move(res.frontier);
  }

  void save_quantized_payload(std::FILE* f,
                              const std::string& path) const override {
    tier_.save_store(f, path);
  }

  void load_quantized_payload(std::FILE* f, const std::string& path) override {
    tier_.load_store(f, path, points_.size(), points_.dims());
  }

  // ----------------------------------------------------------------------------

  void save_payload(std::FILE* f, const std::string& path) const override {
    if (tier_.evicted()) {
      tier_.write_points_from_store(f, path);
    } else {
      ioutil::write_points(f, points_, path);
    }
    write_hnsw_index_payload(f, index_, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = read_hnsw_index_payload<Metric, T>(f, path);
    tier_.reset();
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = num_points();
    s.dims = tier_.evicted() ? tier_.store().dims() : points_.dims();
    s.memory_bytes =
        points_.memory_bytes() + tier_.memory_bytes() +
        index_.levels.capacity() * sizeof(std::uint32_t);
    for (const auto& layer : index_.layers) s.memory_bytes += layer.memory_bytes();
    std::size_t bottom_edges =
        index_.layers.empty() ? 0 : index_.layers[0].num_edges();
    s.details = {{"num_layers", static_cast<double>(index_.layers.size())},
                 {"entry_level", static_cast<double>(index_.entry_level)},
                 {"bottom_edges", static_cast<double>(bottom_edges)}};
    tier_.append_stats(s);
    return s;
  }

  std::size_t num_points() const override {
    return tier_.evicted() && !index_.layers.empty() ? index_.layers[0].size()
                                                     : points_.size();
  }

 private:
  HNSWParams params_;
  PointSet<T> points_;
  HNSWIndex<Metric, T> index_;
  QuantizedTier<Metric, T> tier_;
};

// --- ivf_flat ----------------------------------------------------------------

template <typename Metric, typename T>
class IVFFlatBackend final : public TypedBackend<T> {
 public:
  explicit IVFFlatBackend(IVFParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = IVFFlat<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    IVFQueryParams qp{.nprobe = std::max<std::uint32_t>(params.beam_width, 1),
                      .k = params.k};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = IVFFlat<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.memory_bytes = points_.memory_bytes() + index_.memory_bytes();
    s.details = {{"num_lists", static_cast<double>(index_.num_lists())}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  IVFParams params_;
  PointSet<T> points_;
  IVFFlat<Metric, T> index_;
};

// --- ivf_pq ------------------------------------------------------------------

template <typename Metric, typename T>
class IVFPQBackend final : public TypedBackend<T> {
 public:
  explicit IVFPQBackend(IVFPQParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = IVFPQ<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    IVFQueryParams qp{.nprobe = std::max<std::uint32_t>(params.beam_width, 1),
                      .k = params.k};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = IVFPQ<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.memory_bytes = points_.memory_bytes() + index_.memory_bytes();
    s.details = {
        {"num_subspaces", static_cast<double>(index_.quantizer().num_subspaces())},
        {"rerank", static_cast<double>(params_.rerank)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  IVFPQParams params_;
  PointSet<T> points_;
  IVFPQ<Metric, T> index_;
};

// --- lsh ---------------------------------------------------------------------

template <typename Metric, typename T>
class LSHBackend final : public TypedBackend<T> {
 public:
  explicit LSHBackend(LSHParams params) : params_(std::move(params)) {}

  void build(PointSet<T> points) override {
    points_ = std::move(points);
    index_ = LSHIndex<Metric, T>::build(points_, params_);
  }

  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params) const override {
    LSHQueryParams qp{.k = params.k,
                      .multiprobe =
                          std::min(params.beam_width, params_.num_bits)};
    return index_.query_full(query, points_, qp);
  }

  std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const override {
    return exact_range_scan<Metric>(points_, query, params.radius);
  }

  void save_payload(std::FILE* f, const std::string& path) const override {
    ioutil::write_points(f, points_, path);
    index_.save_payload(f, path);
  }

  void load_payload(std::FILE* f, const std::string& path) override {
    points_ = ioutil::read_points<T>(f, path);
    index_ = LSHIndex<Metric, T>::load_payload(f, path);
  }

  IndexStats stats() const override {
    IndexStats s;
    s.num_points = points_.size();
    s.dims = points_.dims();
    s.memory_bytes = points_.memory_bytes() + index_.memory_bytes();
    s.details = {{"num_tables", static_cast<double>(index_.num_tables())},
                 {"num_bits", static_cast<double>(params_.num_bits)}};
    return s;
  }

  std::size_t num_points() const override { return points_.size(); }

 private:
  LSHParams params_;
  PointSet<T> points_;
  LSHIndex<Metric, T> index_;
};

}  // namespace adapters

}  // namespace ann
