// ann::IndexSpec — one declarative description of an index: the algorithm
// name, distance metric, and element type that key the registry, plus the
// per-algorithm build parameters as a tagged variant (std::monostate means
// "use the algorithm's defaults").
//
// The spec is the unit of persistence: AnyIndex::save writes it into the
// container header (core/index_io.h) as a key/value map, and AnyIndex::load
// reconstructs the exact same backend from it — so a saved index round-trips
// without the caller knowing its concrete type.
//
// Query-time parameters are NOT part of the spec: every backend takes
// ann::QueryParams, which is core/beam_search.h's SearchParams (the single
// source of truth — the API aliases it rather than redefining the fields).
// Backends without a beam interpret beam_width as their own effort knob
// (IVF: nprobe, LSH: multiprobe); see src/api/adapters.h.
#pragma once

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "algorithms/diskann.h"
#include "algorithms/hcnng.h"
#include "algorithms/hnsw.h"
#include "algorithms/pynndescent.h"
#include "algorithms/sharded_build.h"
#include "core/beam_search.h"
#include "core/distance.h"
#include "ivf/ivf_flat.h"
#include "ivf/ivf_pq.h"
#include "lsh/lsh.h"

namespace ann {

// The uniform query-parameter surface (see header comment).
using QueryParams = SearchParams;

// --- canonical names for the (algorithm, metric, dtype) triple ---------------

template <typename T>
constexpr const char* dtype_name();
template <>
constexpr const char* dtype_name<float>() {
  return "float";
}
template <>
constexpr const char* dtype_name<std::uint8_t>() {
  return "uint8";
}
template <>
constexpr const char* dtype_name<std::int8_t>() {
  return "int8";
}

template <typename Metric>
constexpr const char* metric_api_name();
template <>
constexpr const char* metric_api_name<EuclideanSquared>() {
  return "euclidean";
}
template <>
constexpr const char* metric_api_name<NegInnerProduct>() {
  return "mips";
}
template <>
constexpr const char* metric_api_name<Cosine>() {
  return "cosine";
}

// Accept common aliases; anything unrecognized passes through unchanged so
// the registry reports it as unknown with the caller's spelling.
inline std::string normalize_metric(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "l2" || name == "euclidean_sq" || name == "l2sq") {
    return "euclidean";
  }
  if (name == "ip" || name == "inner_product" || name == "neg_inner_product" ||
      name == "dot") {
    return "mips";
  }
  if (name == "angular") return "cosine";
  return name;
}

inline std::string normalize_dtype(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (name == "float32" || name == "f32") return "float";
  if (name == "u8" || name == "byte") return "uint8";
  if (name == "i8") return "int8";
  return name;
}

// --- the spec ----------------------------------------------------------------

using AlgorithmParams =
    std::variant<std::monostate, DiskANNParams, HNSWParams, HCNNGParams,
                 PyNNDescentParams, IVFParams, IVFPQParams, LSHParams,
                 ShardedBuildParams>;

struct IndexSpec {
  std::string algorithm;
  std::string metric = "euclidean";
  std::string dtype = "float";
  AlgorithmParams params;  // monostate => algorithm defaults

  // The build parameters as P, falling back to `defaults` when the variant
  // holds monostate (or a different algorithm's params).
  template <typename P>
  P params_or(P defaults = P{}) const {
    if (const P* p = std::get_if<P>(&params)) return *p;
    return defaults;
  }
};

// --- param <-> key/value map (the container-header encoding) -----------------
//
// Values are doubles: every tuning field is a small integer, flag, or float.
// 64-bit seeds are split into two exact 32-bit halves (key_hi/key_lo) so a
// full-width seed round-trips losslessly — rounding one would break the
// determinism contract the spec carries.

using ParamKVs = std::vector<std::pair<std::string, double>>;

inline double kv_get(const ParamKVs& kvs, const std::string& key,
                     double fallback) {
  for (const auto& [k, v] : kvs) {
    if (k == key) return v;
  }
  return fallback;
}

inline void kv_put_u64(ParamKVs& kvs, const std::string& key,
                       std::uint64_t v) {
  kvs.emplace_back(key + "_hi", static_cast<double>(v >> 32));
  kvs.emplace_back(key + "_lo", static_cast<double>(v & 0xffffffffull));
}

inline std::uint64_t kv_get_u64(const ParamKVs& kvs, const std::string& key,
                                std::uint64_t fallback) {
  double hi = kv_get(kvs, key + "_hi", -1.0);
  double lo = kv_get(kvs, key + "_lo", -1.0);
  if (hi < 0.0 || lo < 0.0) return fallback;
  return (static_cast<std::uint64_t>(hi) << 32) |
         static_cast<std::uint64_t>(lo);
}

inline ParamKVs to_kv(const DiskANNParams& p) {
  ParamKVs kvs = {{"degree_bound", static_cast<double>(p.degree_bound)},
          {"beam_width", static_cast<double>(p.beam_width)},
          {"alpha", p.alpha},
          {"batch_cap_fraction", p.batch_cap_fraction},
          {"prefix_doubling", p.prefix_doubling ? 1.0 : 0.0},
          {"shuffle", p.shuffle ? 1.0 : 0.0}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline DiskANNParams diskann_params_from_kv(const ParamKVs& m) {
  DiskANNParams d;
  d.degree_bound =
      static_cast<std::uint32_t>(kv_get(m, "degree_bound", d.degree_bound));
  d.beam_width =
      static_cast<std::uint32_t>(kv_get(m, "beam_width", d.beam_width));
  d.alpha = static_cast<float>(kv_get(m, "alpha", d.alpha));
  d.batch_cap_fraction = kv_get(m, "batch_cap_fraction", d.batch_cap_fraction);
  d.prefix_doubling = kv_get(m, "prefix_doubling", d.prefix_doubling) != 0.0;
  d.seed = kv_get_u64(m, "seed", d.seed);
  d.shuffle = kv_get(m, "shuffle", d.shuffle) != 0.0;
  return d;
}

inline ParamKVs to_kv(const HNSWParams& p) {
  ParamKVs kvs = {{"m", static_cast<double>(p.m)},
          {"ef_construction", static_cast<double>(p.ef_construction)},
          {"alpha", p.alpha},
          {"batch_cap_fraction", p.batch_cap_fraction},
          {"shuffle", p.shuffle ? 1.0 : 0.0}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline HNSWParams hnsw_params_from_kv(const ParamKVs& m) {
  HNSWParams h;
  h.m = static_cast<std::uint32_t>(kv_get(m, "m", h.m));
  h.ef_construction = static_cast<std::uint32_t>(
      kv_get(m, "ef_construction", h.ef_construction));
  h.alpha = static_cast<float>(kv_get(m, "alpha", h.alpha));
  h.batch_cap_fraction = kv_get(m, "batch_cap_fraction", h.batch_cap_fraction);
  h.seed = kv_get_u64(m, "seed", h.seed);
  h.shuffle = kv_get(m, "shuffle", h.shuffle) != 0.0;
  return h;
}

inline ParamKVs to_kv(const HCNNGParams& p) {
  ParamKVs kvs = {{"num_trees", static_cast<double>(p.num_trees)},
          {"leaf_size", static_cast<double>(p.leaf_size)},
          {"mst_degree", static_cast<double>(p.mst_degree)},
          {"mst_restriction", static_cast<double>(p.mst_restriction)},
          {"restricted", p.restricted ? 1.0 : 0.0},
          {"alpha", p.alpha}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline HCNNGParams hcnng_params_from_kv(const ParamKVs& m) {
  HCNNGParams c;
  c.num_trees = static_cast<std::uint32_t>(kv_get(m, "num_trees", c.num_trees));
  c.leaf_size = static_cast<std::uint32_t>(kv_get(m, "leaf_size", c.leaf_size));
  c.mst_degree =
      static_cast<std::uint32_t>(kv_get(m, "mst_degree", c.mst_degree));
  c.mst_restriction = static_cast<std::uint32_t>(
      kv_get(m, "mst_restriction", c.mst_restriction));
  c.restricted = kv_get(m, "restricted", c.restricted) != 0.0;
  c.alpha = static_cast<float>(kv_get(m, "alpha", c.alpha));
  c.seed = kv_get_u64(m, "seed", c.seed);
  return c;
}

inline ParamKVs to_kv(const PyNNDescentParams& p) {
  ParamKVs kvs = {{"k", static_cast<double>(p.k)},
          {"num_trees", static_cast<double>(p.num_trees)},
          {"leaf_size", static_cast<double>(p.leaf_size)},
          {"alpha", p.alpha},
          {"undirect_cap", static_cast<double>(p.undirect_cap)},
          {"max_rounds", static_cast<double>(p.max_rounds)},
          {"termination_frac", p.termination_frac},
          {"block_size", static_cast<double>(p.block_size)}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline PyNNDescentParams pynndescent_params_from_kv(const ParamKVs& m) {
  PyNNDescentParams p;
  p.k = static_cast<std::uint32_t>(kv_get(m, "k", p.k));
  p.num_trees = static_cast<std::uint32_t>(kv_get(m, "num_trees", p.num_trees));
  p.leaf_size = static_cast<std::uint32_t>(kv_get(m, "leaf_size", p.leaf_size));
  p.alpha = static_cast<float>(kv_get(m, "alpha", p.alpha));
  p.undirect_cap =
      static_cast<std::uint32_t>(kv_get(m, "undirect_cap", p.undirect_cap));
  p.max_rounds =
      static_cast<std::uint32_t>(kv_get(m, "max_rounds", p.max_rounds));
  p.termination_frac = kv_get(m, "termination_frac", p.termination_frac);
  p.block_size =
      static_cast<std::uint32_t>(kv_get(m, "block_size", p.block_size));
  p.seed = kv_get_u64(m, "seed", p.seed);
  return p;
}

inline ParamKVs to_kv(const IVFParams& p) {
  ParamKVs kvs = {{"num_centroids", static_cast<double>(p.num_centroids)},
          {"kmeans_iters", static_cast<double>(p.kmeans_iters)}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline IVFParams ivf_params_from_kv(const ParamKVs& m) {
  IVFParams p;
  p.num_centroids =
      static_cast<std::uint32_t>(kv_get(m, "num_centroids", p.num_centroids));
  p.kmeans_iters =
      static_cast<std::uint32_t>(kv_get(m, "kmeans_iters", p.kmeans_iters));
  p.seed = kv_get_u64(m, "seed", p.seed);
  return p;
}

inline ParamKVs to_kv(const IVFPQParams& p) {
  ParamKVs kvs = {{"num_centroids", static_cast<double>(p.ivf.num_centroids)},
          {"kmeans_iters", static_cast<double>(p.ivf.kmeans_iters)},
          {"num_subspaces", static_cast<double>(p.pq.num_subspaces)},
          {"num_codes", static_cast<double>(p.pq.num_codes)},
          {"pq_kmeans_iters", static_cast<double>(p.pq.kmeans_iters)},
          {"rerank", static_cast<double>(p.rerank)}};
  kv_put_u64(kvs, "ivf_seed", p.ivf.seed);
  kv_put_u64(kvs, "pq_seed", p.pq.seed);
  return kvs;
}

inline IVFPQParams ivfpq_params_from_kv(const ParamKVs& m) {
  IVFPQParams p;
  p.ivf.num_centroids = static_cast<std::uint32_t>(
      kv_get(m, "num_centroids", p.ivf.num_centroids));
  p.ivf.kmeans_iters =
      static_cast<std::uint32_t>(kv_get(m, "kmeans_iters", p.ivf.kmeans_iters));
  p.ivf.seed = kv_get_u64(m, "ivf_seed", p.ivf.seed);
  p.pq.num_subspaces =
      static_cast<std::uint32_t>(kv_get(m, "num_subspaces", p.pq.num_subspaces));
  p.pq.num_codes =
      static_cast<std::uint32_t>(kv_get(m, "num_codes", p.pq.num_codes));
  p.pq.kmeans_iters = static_cast<std::uint32_t>(
      kv_get(m, "pq_kmeans_iters", p.pq.kmeans_iters));
  p.pq.seed = kv_get_u64(m, "pq_seed", p.pq.seed);
  p.rerank = static_cast<std::uint32_t>(kv_get(m, "rerank", p.rerank));
  return p;
}

inline ParamKVs to_kv(const LSHParams& p) {
  ParamKVs kvs = {{"num_tables", static_cast<double>(p.num_tables)},
          {"num_bits", static_cast<double>(p.num_bits)}};
  kv_put_u64(kvs, "seed", p.seed);
  return kvs;
}

inline LSHParams lsh_params_from_kv(const ParamKVs& m) {
  LSHParams p;
  p.num_tables =
      static_cast<std::uint32_t>(kv_get(m, "num_tables", p.num_tables));
  p.num_bits = static_cast<std::uint32_t>(kv_get(m, "num_bits", p.num_bits));
  p.seed = kv_get_u64(m, "seed", p.seed);
  return p;
}

inline ParamKVs to_kv(const ShardedBuildParams& p) {
  ParamKVs kvs = {{"num_shards", static_cast<double>(p.num_shards)},
          {"overlap", static_cast<double>(p.overlap)},
          {"kmeans_iters", static_cast<double>(p.kmeans_iters)}};
  kv_put_u64(kvs, "seed", p.seed);
  // The nested per-shard build parameters, namespaced so keys like "seed"
  // cannot collide with the sharding-level ones.
  for (const auto& [key, value] : to_kv(p.diskann)) {
    kvs.emplace_back("diskann_" + key, value);
  }
  return kvs;
}

inline ShardedBuildParams sharded_params_from_kv(const ParamKVs& m) {
  ShardedBuildParams p;
  p.num_shards =
      static_cast<std::uint32_t>(kv_get(m, "num_shards", p.num_shards));
  p.overlap = static_cast<std::uint32_t>(kv_get(m, "overlap", p.overlap));
  p.kmeans_iters =
      static_cast<std::uint32_t>(kv_get(m, "kmeans_iters", p.kmeans_iters));
  p.seed = kv_get_u64(m, "seed", p.seed);
  ParamKVs nested;
  const std::string prefix = "diskann_";
  for (const auto& [key, value] : m) {
    if (key.rfind(prefix, 0) == 0) {
      nested.emplace_back(key.substr(prefix.size()), value);
    }
  }
  p.diskann = diskann_params_from_kv(nested);
  return p;
}

inline ParamKVs serialize_params(const AlgorithmParams& params) {
  return std::visit(
      [](const auto& p) -> ParamKVs {
        if constexpr (std::is_same_v<std::decay_t<decltype(p)>,
                                     std::monostate>) {
          return {};
        } else {
          return to_kv(p);
        }
      },
      params);
}

// True when the variant holds the builtin algorithm's params type (or
// monostate = defaults). Unknown algorithm names pass — external backends
// may interpret the variant however they like.
inline bool params_match_algorithm(const std::string& algorithm,
                                   const AlgorithmParams& params) {
  if (std::holds_alternative<std::monostate>(params)) return true;
  // dynamic_diskann shares DiskANNParams with the static builder (it runs
  // the same batch-insert machinery incrementally).
  if (algorithm == "diskann" || algorithm == "dynamic_diskann") {
    return std::holds_alternative<DiskANNParams>(params);
  }
  if (algorithm == "sharded_diskann") {
    return std::holds_alternative<ShardedBuildParams>(params);
  }
  if (algorithm == "hnsw") return std::holds_alternative<HNSWParams>(params);
  if (algorithm == "hcnng") return std::holds_alternative<HCNNGParams>(params);
  if (algorithm == "pynndescent") {
    return std::holds_alternative<PyNNDescentParams>(params);
  }
  if (algorithm == "ivf_flat") return std::holds_alternative<IVFParams>(params);
  if (algorithm == "ivf_pq") return std::holds_alternative<IVFPQParams>(params);
  if (algorithm == "lsh") return std::holds_alternative<LSHParams>(params);
  return true;
}

// Rebuild the tagged variant from a container header. Unknown algorithms
// yield monostate; the registry rejects them with a proper error.
inline AlgorithmParams params_from_kv(const std::string& algorithm,
                                      const ParamKVs& m) {
  if (algorithm == "diskann" || algorithm == "dynamic_diskann") {
    return diskann_params_from_kv(m);
  }
  if (algorithm == "sharded_diskann") return sharded_params_from_kv(m);
  if (algorithm == "hnsw") return hnsw_params_from_kv(m);
  if (algorithm == "hcnng") return hcnng_params_from_kv(m);
  if (algorithm == "pynndescent") return pynndescent_params_from_kv(m);
  if (algorithm == "ivf_flat") return ivf_params_from_kv(m);
  if (algorithm == "ivf_pq") return ivfpq_params_from_kv(m);
  if (algorithm == "lsh") return lsh_params_from_kv(m);
  return std::monostate{};
}

}  // namespace ann
