// ann::AnyIndex — the type-erased index handle behind the unified public
// API. One surface for every builder in the repo:
//
//   build(points)                        construct over a PointSet<T>
//   search(query, QueryParams)          -> std::vector<Neighbor>
//   batch_search(queries, QueryParams)  parallel fan-out over a query set
//   range_search(query, radius)         -> all points within radius
//   attach_labels(store) / labels()     per-point label sets (src/filter/)
//   filtered_search(query, spec, p)     predicate-constrained top-k
//   filtered_batch_search(...)          same, parallel over a query set
//   insert(points) / erase(ids) /       mutation, on backends that opt in
//   consolidate()                       (supports_updates() probes for it)
//   save(path) / AnyIndex::load(path)   versioned container round-trip
//   stats()                             algorithm/metric/dtype + detail KVs
//
// k contract (uniform across all backends, enforced HERE so backends never
// see a degenerate k): k == 0 returns an empty result; k > num_points is
// clamped to num_points. Filtered over-fetch hits the k > n edge routinely,
// which is why the clamp lives on the shared dispatch path rather than in
// per-backend folklore.
//
// Filtered search: graph backends override filtered_search with native
// traversal-level filtering (core/beam_search.h filtered_beam_search);
// everything else inherits TypedBackend's post-filter fallback (over-fetch
// by estimated selectivity, then filter + truncate — src/filter/
// post_filter.h). supports_native_filtering() advertises which path runs.
// Native-path results are byte-identical under any worker count for
// label-based FilterSpecs; the std::function escape hatch is only as
// deterministic as the callable it carries.
//
// Erasure layout: AnyIndex owns a BackendBase; concrete backends derive from
// TypedBackend<T> (the element type cannot be a virtual parameter, so the
// typed surface lives one level down and AnyIndex's templated methods
// dynamic_cast to it, turning dtype mismatches into clear runtime errors
// instead of garbage reads). Mutability is a second, optional capability:
// backends that support updates additionally derive from
// MutableTypedBackend<T>; calling a mutating method on any other backend
// throws unsupported_operation (mirroring the dtype-mismatch design — a
// clear runtime error, not a silent no-op).
//
// Backends own a copy of the indexed points, so a search needs nothing but
// the query and saved indexes are self-contained (load needs no side file).
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "parlay/parallel.h"

#include "api/index_spec.h"
#include "core/beam_search.h"
#include "core/error.h"
#include "core/points.h"
#include "core/range_search.h"
#include "core/simd/caps.h"
#include "filter/filter_spec.h"
#include "filter/label_store.h"
#include "filter/post_filter.h"
#include "quant/quant_spec.h"

namespace ann {

// unsupported_operation now lives in core/error.h with the rest of the
// error taxonomy; it is still thrown from here when a capability the
// backend does not implement is invoked (e.g. insert on a build-once
// index).

struct IndexStats {
  std::string algorithm;
  std::string metric;
  std::string dtype;
  std::size_t num_points = 0;
  std::size_t dims = 0;
  // Resident bytes of the index's owned state: coordinate rows, graph /
  // bucket structures, codebooks and codes, label store. Excludes mmap'd
  // file backing (evictable by the kernel — reported separately in details
  // as "mapped_bytes" where present). The quantized tier's headline figure:
  // attach_quantized with evict_raw shrinks this by roughly the point-set
  // size.
  std::size_t memory_bytes = 0;
  // Backend-specific figures (edges, layers, lists, ...).
  std::vector<std::pair<std::string, double>> details;

  double detail(const std::string& key, double fallback = 0.0) const {
    return kv_get(details, key, fallback);
  }
};

// Untyped backend surface: everything that does not mention T.
class BackendBase {
 public:
  virtual ~BackendBase() = default;

  // Payloads are self-contained (points + algorithm state); the container
  // header preceding them is written/read by AnyIndex.
  virtual void save_payload(std::FILE* f, const std::string& path) const = 0;
  virtual void load_payload(std::FILE* f, const std::string& path) = 0;
  virtual IndexStats stats() const = 0;
  virtual std::size_t num_points() const = 0;

  // True when filtered_search runs the predicate inside the traversal
  // (graph backends); false means the post-filter fallback serves it.
  virtual bool supports_native_filtering() const { return false; }

  // --- quantized tier (optional capability, src/quant/) ---------------------
  //
  // Backends that can traverse over compressed codes (the graph backends)
  // override this block. The defaults make the capability absent: probes
  // return false and actions throw unsupported_operation, mirroring the
  // mutation capability's design.

  // True when this backend type implements the quantized path at all
  // (independent of whether a store is currently attached).
  virtual bool supports_quantized_search() const { return false; }

  // True once attach_quantized (or loading a file with a quant payload)
  // installed a code store.
  virtual bool has_quantized() const { return false; }

  // Train a compressed code store over the indexed points per `spec` and
  // enable quantized_search. With spec.evict_raw the full-precision rows
  // are dropped afterwards (see QuantizedSpec).
  virtual void attach_quantized(const QuantizedSpec& spec) {
    (void)spec;
    throw unsupported_operation(
        "this backend does not support quantized search "
        "(see supports_quantized_search())");
  }

  // Write the full-precision rows as a PANV vector store (the mmap rerank
  // source) to `path`.
  virtual void export_vector_store(const std::string& path) const {
    (void)path;
    throw unsupported_operation(
        "this backend does not support quantized search "
        "(see supports_quantized_search())");
  }

  // Container round-trip of the attached store ("PANQ" payload). Only
  // invoked by the registry when has_quantized() / the file says so.
  virtual void save_quantized_payload(std::FILE* f,
                                      const std::string& path) const {
    (void)f;
    throw unsupported_operation("no quantized store to save: " + path);
  }
  virtual void load_quantized_payload(std::FILE* f, const std::string& path) {
    (void)f;
    throw std::runtime_error(
        "index file carries a quantized payload but backend does not "
        "support quantized search: " + path);
  }
};

// Typed backend surface; concrete adapters (src/api/adapters.h) derive from
// this for their element type.
template <typename T>
class TypedBackend : public BackendBase {
 public:
  // By value: AnyIndex::build copies from an lvalue or moves from an rvalue,
  // so callers that hand over ownership pay no extra copy of the dataset.
  virtual void build(PointSet<T> points) = 0;
  virtual std::vector<Neighbor> search(const T* query,
                                       const QueryParams& params) const = 0;
  virtual std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const = 0;

  // Predicate-constrained top-k. This default is the generic post-filter
  // fallback: over-fetch an unfiltered shortlist sized by the filter's
  // estimated selectivity, drop non-matching entries, truncate to k. Graph
  // backends override it with traversal-level filtering and flip
  // supports_native_filtering(). AnyIndex has already clamped params.k and
  // resolved filter_beam_factor by the time this runs.
  virtual std::vector<Neighbor> filtered_search(
      const T* query, const BoundFilter& filter,
      const QueryParams& params) const {
    const std::uint32_t fetch = post_filter_fetch_k(
        params.k, num_points(), filter.estimated_selectivity(num_points()));
    auto results = search(query, post_filter_params(params, fetch));
    apply_post_filter(results, filter, params.k);
    return results;
  }

  // Quantized traversal + optional exact rerank (params.rerank_count).
  // Overridden alongside attach_quantized; the default mirrors the
  // capability-absent contract.
  virtual std::vector<Neighbor> quantized_search(
      const T* query, const QueryParams& params) const {
    (void)query;
    (void)params;
    throw unsupported_operation(
        "this backend does not support quantized search "
        "(see supports_quantized_search())");
  }
};

// Optional mutation capability, untyped half: erase and consolidate never
// mention T. Backends that support updates derive from the typed class
// below; AnyIndex probes for this base to answer supports_updates().
class MutableBackendBase {
 public:
  virtual ~MutableBackendBase() = default;

  // Tombstone the given ids; they stop appearing in query results
  // immediately. Ids are validated by AnyIndex before this is called.
  virtual void erase(std::span<const PointId> ids) = 0;

  // Splice tombstoned points out of the index structure (maintenance).
  virtual void consolidate() = 0;
};

// Typed half of the mutation capability.
template <typename T>
class MutableTypedBackend : public MutableBackendBase {
 public:
  // Append a batch of points; returns the id of the first inserted point
  // (ids are contiguous). Must reject a dims mismatch with
  // std::invalid_argument.
  virtual PointId insert(const PointSet<T>& points) = 0;
};

class AnyIndex {
 public:
  AnyIndex() = default;
  AnyIndex(IndexSpec spec, std::unique_ptr<BackendBase> impl)
      : spec_(std::move(spec)), impl_(std::move(impl)) {}

  bool valid() const { return impl_ != nullptr; }
  const IndexSpec& spec() const { return spec_; }

  IndexStats stats() const {
    require_impl("stats");
    IndexStats s = impl_->stats();
    s.algorithm = spec_.algorithm;
    s.metric = spec_.metric;
    s.dtype = spec_.dtype;
    // The label store is owned by the handle, not the backend, so its
    // residency is accounted here.
    if (labels_) s.memory_bytes += labels_->memory_bytes();
    // Which SIMD kernel tier is serving this process's distance evaluations
    // (numeric simd::Tier value; name via simd::tier_name — docs/SIMD.md).
    s.details.emplace_back("simd_tier",
                           static_cast<double>(simd::active_tier()));
    return s;
  }

  // The index keeps its own copy of the points (so searches need nothing
  // but the query and saved files are self-contained); pass an rvalue to
  // transfer ownership without copying the dataset.
  template <typename T>
  void build(const PointSet<T>& points) {
    typed<T>("build").build(points);
  }

  template <typename T>
  void build(PointSet<T>&& points) {
    typed<T>("build").build(std::move(points));
  }

  template <typename T>
  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("search");
    // k contract + unbuilt-index handling: backends past this point see a
    // non-empty structure and 1 <= k <= num_points.
    auto p = clamp_k(params, backend.num_points());
    if (!p) return {};
    return backend.search(query, *p);
  }

  // Parallel fan-out over a query set; results[q] matches search(queries[q])
  // element-wise under any worker count (the shared beam search is
  // deterministic and its scratch state — visited tables, beam storage —
  // comes from a per-thread SearchScratch pool, so concurrent queries never
  // share mutable state and steady-state fan-out does no scratch
  // allocation).
  template <typename T>
  std::vector<std::vector<Neighbor>> batch_search(
      const PointSet<T>& queries, const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("batch_search");
    std::vector<std::vector<Neighbor>> results(queries.size());
    auto p = clamp_k(params, backend.num_points());
    if (!p) return results;
    parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
      results[q] = backend.search(queries[static_cast<PointId>(q)], *p);
    }, 1);
    return results;
  }

  // All points within `radius` of the query, ascending by (dist, id).
  template <typename T>
  std::vector<Neighbor> range_search(const T* query, float radius) const {
    RangeSearchParams params;
    params.radius = radius;
    return range_search(query, params);
  }

  template <typename T>
  std::vector<Neighbor> range_search(const T* query,
                                     const RangeSearchParams& params) const {
    const TypedBackend<T>& backend = typed<T>("range_search");
    if (backend.num_points() == 0) return {};
    return backend.range_search(query, params);
  }

  // --- labels + filtered search ----------------------------------------------

  // Attach per-point label sets. The store must describe exactly the points
  // the index holds (attach after build or load); it is persisted by save()
  // and restored by load(). Stored shared, so long-running consumers (the
  // serving layer) can hold the store across a hot-swap of the handle.
  void attach_labels(LabelStore store) {
    require_impl("attach_labels");
    if (store.num_points() != impl_->num_points()) {
      throw std::invalid_argument(
          "AnyIndex::attach_labels: store covers " +
          std::to_string(store.num_points()) + " points but the index holds " +
          std::to_string(impl_->num_points()));
    }
    labels_ = std::make_shared<const LabelStore>(std::move(store));
  }

  bool has_labels() const { return labels_ != nullptr; }

  const LabelStore& labels() const {
    if (!labels_) {
      throw std::logic_error(
          "AnyIndex::labels: no LabelStore attached (attach_labels)");
    }
    return *labels_;
  }

  std::shared_ptr<const LabelStore> labels_ptr() const { return labels_; }

  // True when the backend filters inside the traversal; false means the
  // post-filter fallback serves filtered_search.
  bool supports_native_filtering() const {
    return impl_ != nullptr && impl_->supports_native_filtering();
  }

  // Predicate-constrained top-k: the k nearest points matching `filter`.
  // May return fewer than k when the filter admits fewer matches (an empty
  // vector when it admits none). An inactive filter degrades to search().
  // filter_beam_factor <= 0 resolves to auto_filter_beam_factor of the
  // filter's estimated selectivity here — a pure function of (spec, store),
  // so the auto choice preserves determinism.
  template <typename T>
  std::vector<Neighbor> filtered_search(const T* query,
                                        const FilterSpec& filter,
                                        const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("filtered_search");
    auto p = clamp_k(params, backend.num_points());
    if (!p) return {};
    if (!filter.active()) return backend.search(query, *p);
    BoundFilter bound(filter, labels_.get());
    resolve_filter_factor(*p, bound, backend.num_points());
    return backend.filtered_search(query, bound, *p);
  }

  // Parallel filtered fan-out, one FilterSpec for the whole batch.
  // results[q] matches filtered_search(queries[q], filter) element-wise
  // under any worker count (native path; the post-filter path inherits the
  // determinism of the underlying unfiltered search).
  template <typename T>
  std::vector<std::vector<Neighbor>> filtered_batch_search(
      const PointSet<T>& queries, const FilterSpec& filter,
      const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("filtered_batch_search");
    std::vector<std::vector<Neighbor>> results(queries.size());
    auto p = clamp_k(params, backend.num_points());
    if (!p) return results;
    if (!filter.active()) {
      parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
        results[q] = backend.search(queries[static_cast<PointId>(q)], *p);
      }, 1);
      return results;
    }
    BoundFilter bound(filter, labels_.get());
    resolve_filter_factor(*p, bound, backend.num_points());
    parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
      results[q] = backend.filtered_search(queries[static_cast<PointId>(q)],
                                           bound, *p);
    }, 1);
    return results;
  }

  // Parallel filtered fan-out with a per-query FilterSpec (the serving
  // layer's shape: one request, one filter). filters.size() must equal
  // queries.size().
  template <typename T>
  std::vector<std::vector<Neighbor>> filtered_batch_search(
      const PointSet<T>& queries, std::span<const FilterSpec> filters,
      const QueryParams& params = {}) const {
    if (filters.size() != queries.size()) {
      throw std::invalid_argument(
          "AnyIndex::filtered_batch_search: " + std::to_string(queries.size()) +
          " queries but " + std::to_string(filters.size()) + " filters");
    }
    const TypedBackend<T>& backend = typed<T>("filtered_batch_search");
    std::vector<std::vector<Neighbor>> results(queries.size());
    auto p = clamp_k(params, backend.num_points());
    if (!p) return results;
    // Bind (and validate) every spec up front, on the calling thread, so a
    // missing LabelStore throws before any parallel work starts.
    std::vector<std::optional<BoundFilter>> bound(filters.size());
    for (std::size_t q = 0; q < filters.size(); ++q) {
      if (filters[q].active()) bound[q].emplace(filters[q], labels_.get());
    }
    parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
      const T* query = queries[static_cast<PointId>(q)];
      if (!bound[q]) {
        results[q] = backend.search(query, *p);
        return;
      }
      QueryParams qp = *p;
      resolve_filter_factor(qp, *bound[q], backend.num_points());
      results[q] = backend.filtered_search(query, *bound[q], qp);
    }, 1);
    return results;
  }

  // --- quantized tier (optional capability) ----------------------------------

  // True when the backend type implements the quantized path (graph
  // backends). False for the inverted-file/hash backends and empty handles.
  bool supports_quantized_search() const {
    return impl_ != nullptr && impl_->supports_quantized_search();
  }

  // True once a code store is attached (attach_quantized or load of a file
  // carrying a quant payload).
  bool has_quantized() const {
    return impl_ != nullptr && impl_->has_quantized();
  }

  // Train a compressed code store over the indexed points and enable
  // quantized_search (src/quant/ — the DiskANN memory-budget tier). Throws
  // unsupported_operation on backends without the capability, and
  // std::invalid_argument on a spec the index cannot honor (e.g. cosine
  // metric, PQ subspaces > dims, mismatched vectors_path shape).
  void attach_quantized(const QuantizedSpec& spec) {
    require_impl("attach_quantized");
    impl_->attach_quantized(spec);
  }

  // Write the index's full-precision rows as a PANV vector store at `path`
  // — the file attach_quantized mmaps for exact rerank.
  void export_vector_store(const std::string& path) const {
    require_impl("export_vector_store");
    impl_->export_vector_store(path);
  }

  // Top-k over the compressed codes, optionally re-scored from
  // full-precision rows (params.rerank_count — clamped up to k). Same k
  // contract as search(). Deterministic under any worker count.
  template <typename T>
  std::vector<Neighbor> quantized_search(const T* query,
                                         const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("quantized_search");
    auto p = clamp_k(params, backend.num_points());
    if (!p) return {};
    return backend.quantized_search(query, *p);
  }

  // Parallel quantized fan-out; results[q] matches quantized_search
  // (queries[q]) element-wise under any worker count.
  template <typename T>
  std::vector<std::vector<Neighbor>> quantized_batch_search(
      const PointSet<T>& queries, const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("quantized_batch_search");
    std::vector<std::vector<Neighbor>> results(queries.size());
    auto p = clamp_k(params, backend.num_points());
    if (!p) return results;
    parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
      results[q] =
          backend.quantized_search(queries[static_cast<PointId>(q)], *p);
    }, 1);
    return results;
  }

  // --- mutation (optional capability) ----------------------------------------

  // True when the backend implements insert/erase/consolidate. False for
  // build-once backends and for an empty handle.
  bool supports_updates() const {
    return dynamic_cast<const MutableBackendBase*>(impl_.get()) != nullptr;
  }

  // Append a batch of points; returns the id of the first inserted point
  // (ids are contiguous). Works on an empty index (insert doubles as the
  // initial load) or on top of a previous build.
  template <typename T>
  PointId insert(const PointSet<T>& points) {
    mutable_base("insert");
    auto* backend = dynamic_cast<MutableTypedBackend<T>*>(impl_.get());
    if (backend == nullptr) {
      throw std::invalid_argument(
          std::string("AnyIndex::insert: index holds dtype '") + spec_.dtype +
          "' but was called with '" + dtype_name<T>() + "'");
    }
    return backend->insert(points);
  }

  // Tombstone points: they stop appearing in search results immediately;
  // structural cleanup is deferred to consolidate(). Out-of-range ids are
  // rejected up front (the whole batch is applied or none of it).
  void erase(std::span<const PointId> ids) {
    MutableBackendBase& backend = mutable_base("erase");
    const std::size_t n = impl_->num_points();
    for (PointId id : ids) {
      if (id >= n) {
        throw std::out_of_range("AnyIndex::erase: id " + std::to_string(id) +
                                " out of range (index holds " +
                                std::to_string(n) + " points)");
      }
    }
    backend.erase(ids);
  }

  // Maintenance: splice tombstoned points out of the index structure.
  void consolidate() { mutable_base("consolidate").consolidate(); }

  void save(const std::string& path) const;  // defined with load in registry.h
  static AnyIndex load(const std::string& path);

 private:
  // The k contract, applied once on the shared dispatch path: k == 0 (or an
  // empty index) means "no results" — callers get an empty vector without
  // the backend ever running; k > num_points clamps, since no backend can
  // return more points than it holds and several would otherwise pad,
  // throw, or truncate each in their own way.
  static std::optional<QueryParams> clamp_k(const QueryParams& params,
                                            std::size_t num_points) {
    if (params.k == 0 || num_points == 0) return std::nullopt;
    QueryParams p = params;
    p.k = static_cast<std::uint32_t>(
        std::min<std::size_t>(p.k, num_points));
    return p;
  }

  static void resolve_filter_factor(QueryParams& params,
                                    const BoundFilter& bound,
                                    std::size_t num_points) {
    if (params.filter_beam_factor <= 0.0f) {
      params.filter_beam_factor =
          auto_filter_beam_factor(bound.estimated_selectivity(num_points));
    }
  }

  MutableBackendBase& mutable_base(const char* op) const {
    require_impl(op);
    auto* backend = dynamic_cast<MutableBackendBase*>(impl_.get());
    if (backend == nullptr) {
      throw unsupported_operation(
          std::string("AnyIndex::") + op + ": backend '" + spec_.algorithm +
          "' does not support updates (see supports_updates())");
    }
    return *backend;
  }

  void require_impl(const char* op) const {
    if (!impl_) {
      throw std::logic_error(std::string("AnyIndex::") + op +
                             " on an empty handle (use ann::make_index)");
    }
  }

  template <typename T>
  TypedBackend<T>& typed(const char* op) const {
    require_impl(op);
    auto* backend = dynamic_cast<TypedBackend<T>*>(impl_.get());
    if (backend == nullptr) {
      throw std::invalid_argument(
          std::string("AnyIndex::") + op + ": index holds dtype '" +
          spec_.dtype + "' but was called with '" + dtype_name<T>() + "'");
    }
    return *backend;
  }

  IndexSpec spec_;
  std::unique_ptr<BackendBase> impl_;
  std::shared_ptr<const LabelStore> labels_;  // null until attach_labels/load
};

}  // namespace ann
