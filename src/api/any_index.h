// ann::AnyIndex — the type-erased index handle behind the unified public
// API. One surface for every builder in the repo:
//
//   build(points)                        construct over a PointSet<T>
//   search(query, QueryParams)          -> std::vector<Neighbor>
//   batch_search(queries, QueryParams)  parallel fan-out over a query set
//   range_search(query, radius)         -> all points within radius
//   insert(points) / erase(ids) /       mutation, on backends that opt in
//   consolidate()                       (supports_updates() probes for it)
//   save(path) / AnyIndex::load(path)   versioned container round-trip
//   stats()                             algorithm/metric/dtype + detail KVs
//
// Erasure layout: AnyIndex owns a BackendBase; concrete backends derive from
// TypedBackend<T> (the element type cannot be a virtual parameter, so the
// typed surface lives one level down and AnyIndex's templated methods
// dynamic_cast to it, turning dtype mismatches into clear runtime errors
// instead of garbage reads). Mutability is a second, optional capability:
// backends that support updates additionally derive from
// MutableTypedBackend<T>; calling a mutating method on any other backend
// throws unsupported_operation (mirroring the dtype-mismatch design — a
// clear runtime error, not a silent no-op).
//
// Backends own a copy of the indexed points, so a search needs nothing but
// the query and saved indexes are self-contained (load needs no side file).
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "parlay/parallel.h"

#include "api/index_spec.h"
#include "core/beam_search.h"
#include "core/points.h"
#include "core/range_search.h"

namespace ann {

// Thrown when a capability the backend does not implement is invoked
// (e.g. insert on a build-once index). Distinct from std::invalid_argument
// so callers can branch on "wrong call" vs "backend cannot do this at all".
class unsupported_operation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

struct IndexStats {
  std::string algorithm;
  std::string metric;
  std::string dtype;
  std::size_t num_points = 0;
  std::size_t dims = 0;
  // Backend-specific figures (edges, layers, lists, ...).
  std::vector<std::pair<std::string, double>> details;

  double detail(const std::string& key, double fallback = 0.0) const {
    return kv_get(details, key, fallback);
  }
};

// Untyped backend surface: everything that does not mention T.
class BackendBase {
 public:
  virtual ~BackendBase() = default;

  // Payloads are self-contained (points + algorithm state); the container
  // header preceding them is written/read by AnyIndex.
  virtual void save_payload(std::FILE* f, const std::string& path) const = 0;
  virtual void load_payload(std::FILE* f, const std::string& path) = 0;
  virtual IndexStats stats() const = 0;
  virtual std::size_t num_points() const = 0;
};

// Typed backend surface; concrete adapters (src/api/adapters.h) derive from
// this for their element type.
template <typename T>
class TypedBackend : public BackendBase {
 public:
  // By value: AnyIndex::build copies from an lvalue or moves from an rvalue,
  // so callers that hand over ownership pay no extra copy of the dataset.
  virtual void build(PointSet<T> points) = 0;
  virtual std::vector<Neighbor> search(const T* query,
                                       const QueryParams& params) const = 0;
  virtual std::vector<Neighbor> range_search(
      const T* query, const RangeSearchParams& params) const = 0;
};

// Optional mutation capability, untyped half: erase and consolidate never
// mention T. Backends that support updates derive from the typed class
// below; AnyIndex probes for this base to answer supports_updates().
class MutableBackendBase {
 public:
  virtual ~MutableBackendBase() = default;

  // Tombstone the given ids; they stop appearing in query results
  // immediately. Ids are validated by AnyIndex before this is called.
  virtual void erase(std::span<const PointId> ids) = 0;

  // Splice tombstoned points out of the index structure (maintenance).
  virtual void consolidate() = 0;
};

// Typed half of the mutation capability.
template <typename T>
class MutableTypedBackend : public MutableBackendBase {
 public:
  // Append a batch of points; returns the id of the first inserted point
  // (ids are contiguous). Must reject a dims mismatch with
  // std::invalid_argument.
  virtual PointId insert(const PointSet<T>& points) = 0;
};

class AnyIndex {
 public:
  AnyIndex() = default;
  AnyIndex(IndexSpec spec, std::unique_ptr<BackendBase> impl)
      : spec_(std::move(spec)), impl_(std::move(impl)) {}

  bool valid() const { return impl_ != nullptr; }
  const IndexSpec& spec() const { return spec_; }

  IndexStats stats() const {
    require_impl("stats");
    IndexStats s = impl_->stats();
    s.algorithm = spec_.algorithm;
    s.metric = spec_.metric;
    s.dtype = spec_.dtype;
    return s;
  }

  // The index keeps its own copy of the points (so searches need nothing
  // but the query and saved files are self-contained); pass an rvalue to
  // transfer ownership without copying the dataset.
  template <typename T>
  void build(const PointSet<T>& points) {
    typed<T>("build").build(points);
  }

  template <typename T>
  void build(PointSet<T>&& points) {
    typed<T>("build").build(std::move(points));
  }

  template <typename T>
  std::vector<Neighbor> search(const T* query,
                               const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("search");
    // Unbuilt (or built-over-empty) index: no neighbors, by definition —
    // backends may assume a non-empty structure past this point.
    if (backend.num_points() == 0) return {};
    return backend.search(query, params);
  }

  // Parallel fan-out over a query set; results[q] matches search(queries[q])
  // element-wise under any worker count (the shared beam search is
  // deterministic and its scratch state — visited tables, beam storage —
  // comes from a per-thread SearchScratch pool, so concurrent queries never
  // share mutable state and steady-state fan-out does no scratch
  // allocation).
  template <typename T>
  std::vector<std::vector<Neighbor>> batch_search(
      const PointSet<T>& queries, const QueryParams& params = {}) const {
    const TypedBackend<T>& backend = typed<T>("batch_search");
    std::vector<std::vector<Neighbor>> results(queries.size());
    if (backend.num_points() == 0) return results;
    parlay::parallel_for(0, queries.size(), [&](std::size_t q) {
      results[q] = backend.search(queries[static_cast<PointId>(q)], params);
    }, 1);
    return results;
  }

  // All points within `radius` of the query, ascending by (dist, id).
  template <typename T>
  std::vector<Neighbor> range_search(const T* query, float radius) const {
    RangeSearchParams params;
    params.radius = radius;
    return range_search(query, params);
  }

  template <typename T>
  std::vector<Neighbor> range_search(const T* query,
                                     const RangeSearchParams& params) const {
    const TypedBackend<T>& backend = typed<T>("range_search");
    if (backend.num_points() == 0) return {};
    return backend.range_search(query, params);
  }

  // --- mutation (optional capability) ----------------------------------------

  // True when the backend implements insert/erase/consolidate. False for
  // build-once backends and for an empty handle.
  bool supports_updates() const {
    return dynamic_cast<const MutableBackendBase*>(impl_.get()) != nullptr;
  }

  // Append a batch of points; returns the id of the first inserted point
  // (ids are contiguous). Works on an empty index (insert doubles as the
  // initial load) or on top of a previous build.
  template <typename T>
  PointId insert(const PointSet<T>& points) {
    mutable_base("insert");
    auto* backend = dynamic_cast<MutableTypedBackend<T>*>(impl_.get());
    if (backend == nullptr) {
      throw std::invalid_argument(
          std::string("AnyIndex::insert: index holds dtype '") + spec_.dtype +
          "' but was called with '" + dtype_name<T>() + "'");
    }
    return backend->insert(points);
  }

  // Tombstone points: they stop appearing in search results immediately;
  // structural cleanup is deferred to consolidate(). Out-of-range ids are
  // rejected up front (the whole batch is applied or none of it).
  void erase(std::span<const PointId> ids) {
    MutableBackendBase& backend = mutable_base("erase");
    const std::size_t n = impl_->num_points();
    for (PointId id : ids) {
      if (id >= n) {
        throw std::out_of_range("AnyIndex::erase: id " + std::to_string(id) +
                                " out of range (index holds " +
                                std::to_string(n) + " points)");
      }
    }
    backend.erase(ids);
  }

  // Maintenance: splice tombstoned points out of the index structure.
  void consolidate() { mutable_base("consolidate").consolidate(); }

  void save(const std::string& path) const;  // defined with load in registry.h
  static AnyIndex load(const std::string& path);

 private:
  MutableBackendBase& mutable_base(const char* op) const {
    require_impl(op);
    auto* backend = dynamic_cast<MutableBackendBase*>(impl_.get());
    if (backend == nullptr) {
      throw unsupported_operation(
          std::string("AnyIndex::") + op + ": backend '" + spec_.algorithm +
          "' does not support updates (see supports_updates())");
    }
    return *backend;
  }

  void require_impl(const char* op) const {
    if (!impl_) {
      throw std::logic_error(std::string("AnyIndex::") + op +
                             " on an empty handle (use ann::make_index)");
    }
  }

  template <typename T>
  TypedBackend<T>& typed(const char* op) const {
    require_impl(op);
    auto* backend = dynamic_cast<TypedBackend<T>*>(impl_.get());
    if (backend == nullptr) {
      throw std::invalid_argument(
          std::string("AnyIndex::") + op + ": index holds dtype '" +
          spec_.dtype + "' but was called with '" + dtype_name<T>() + "'");
    }
    return *backend;
  }

  IndexSpec spec_;
  std::unique_ptr<BackendBase> impl_;
};

}  // namespace ann
