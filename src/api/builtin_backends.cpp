// Registers every builtin backend with the registry: the full cross product
// of {diskann, dynamic_diskann, sharded_diskann, hnsw, hcnng, pynndescent,
// ivf_flat, lsh} x {euclidean, mips, cosine} x {float, uint8, int8}, plus
// ivf_pq for euclidean and mips only (its ADC tables require a metric that
// decomposes over PQ subspaces as a sum, which cosine does not).
//
// Compiled once into the core library — the heavy builder templates are
// instantiated here instead of in every consumer translation unit. The
// factories are referenced through ensure_builtin_backends(), a real symbol,
// so a static-library link can never drop this object file.
#include "api/adapters.h"
#include "api/registry.h"

#include "algorithms/diskann.h"
#include "algorithms/dynamic_index.h"
#include "algorithms/hcnng.h"
#include "algorithms/hnsw.h"
#include "algorithms/pynndescent.h"
#include "algorithms/sharded_build.h"

namespace ann {

namespace {

template <typename Metric, typename T>
void register_for_metric_dtype(Registry& r) {
  const std::string metric = metric_api_name<Metric>();
  const std::string dtype = dtype_name<T>();

  r.register_backend_if_absent("diskann", metric, dtype, [](const IndexSpec& spec) {
    using Backend = adapters::FlatGraphBackend<Metric, T, DiskANNParams>;
    return std::make_unique<Backend>(spec.params_or<DiskANNParams>(),
                                     &build_diskann<Metric, T>);
  });
  r.register_backend_if_absent("dynamic_diskann", metric, dtype, [](const IndexSpec& spec) {
    return std::make_unique<adapters::DynamicDiskANNBackend<Metric, T>>(
        spec.params_or<DiskANNParams>());
  });
  r.register_backend_if_absent("sharded_diskann", metric, dtype, [](const IndexSpec& spec) {
    using Backend = adapters::FlatGraphBackend<Metric, T, ShardedBuildParams>;
    return std::make_unique<Backend>(spec.params_or<ShardedBuildParams>(),
                                     &build_sharded_diskann<Metric, T>);
  });
  r.register_backend_if_absent("hcnng", metric, dtype, [](const IndexSpec& spec) {
    using Backend = adapters::FlatGraphBackend<Metric, T, HCNNGParams>;
    return std::make_unique<Backend>(spec.params_or<HCNNGParams>(),
                                     &build_hcnng<Metric, T>);
  });
  r.register_backend_if_absent("pynndescent", metric, dtype, [](const IndexSpec& spec) {
    using Backend = adapters::FlatGraphBackend<Metric, T, PyNNDescentParams>;
    return std::make_unique<Backend>(spec.params_or<PyNNDescentParams>(),
                                     &build_pynndescent<Metric, T>);
  });
  r.register_backend_if_absent("hnsw", metric, dtype, [](const IndexSpec& spec) {
    return std::make_unique<adapters::HNSWBackend<Metric, T>>(
        spec.params_or<HNSWParams>());
  });
  r.register_backend_if_absent("ivf_flat", metric, dtype, [](const IndexSpec& spec) {
    return std::make_unique<adapters::IVFFlatBackend<Metric, T>>(
        spec.params_or<IVFParams>());
  });
  r.register_backend_if_absent("lsh", metric, dtype, [](const IndexSpec& spec) {
    return std::make_unique<adapters::LSHBackend<Metric, T>>(
        spec.params_or<LSHParams>());
  });
  if constexpr (!std::is_same_v<Metric, Cosine>) {
    r.register_backend_if_absent("ivf_pq", metric, dtype, [](const IndexSpec& spec) {
      return std::make_unique<adapters::IVFPQBackend<Metric, T>>(
          spec.params_or<IVFPQParams>());
    });
  }
}

template <typename Metric>
void register_for_metric(Registry& r) {
  register_for_metric_dtype<Metric, float>(r);
  register_for_metric_dtype<Metric, std::uint8_t>(r);
  register_for_metric_dtype<Metric, std::int8_t>(r);
}

bool register_builtins() {
  Registry& r = Registry::instance();
  register_for_metric<EuclideanSquared>(r);
  register_for_metric<NegInnerProduct>(r);
  register_for_metric<Cosine>(r);
  return true;
}

}  // namespace

void ensure_builtin_backends() {
  static const bool once = register_builtins();
  (void)once;
}

}  // namespace ann
