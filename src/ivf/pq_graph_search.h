// Quantized beam search — the paper's Open Question 3 ("How can
// quantization methods be efficiently parallelized and made deterministic,
// and how do such methods affect the choice of ANNS algorithms?").
//
// The graph is traversed with ADC (PQ table-lookup) distances instead of
// full-dimensional ones; the widened frontier is then re-ranked with exact
// distances. Both the PQ training (deterministic k-means) and the traversal
// (sorted beam, (dist, id) tie-breaking) keep the library's determinism
// guarantee, answering the "made deterministic" half; the bench
// (bench_ablation_pq_search) measures the cost/quality tradeoff half.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/beam_search.h"
#include "core/graph.h"
#include "core/points.h"
#include "core/visited_set.h"
#include "ivf/pq.h"

namespace ann {

// Beam search over g where candidate distances come from the PQ codes.
// `rerank` of the best compressed candidates are re-scored exactly; the
// top-k of those are returned.
template <typename Metric, typename T>
std::vector<PointId> pq_search_knn(const T* query, const PointSet<T>& points,
                                   const ProductQuantizer<T>& pq,
                                   const std::vector<std::uint8_t>& codes,
                                   const Graph& g,
                                   std::span<const PointId> starts,
                                   const SearchParams& params,
                                   std::uint32_t rerank) {
  const std::size_t L = std::max<std::size_t>(params.beam_width, 1);
  auto table = pq.template adc_table<Metric>(query);

  ApproxVisitedSet seen(L);
  std::vector<Neighbor> beam;
  std::vector<unsigned char> processed;

  auto insert_candidate = [&](PointId id, float dist) {
    Neighbor nb{id, dist};
    auto it = std::lower_bound(beam.begin(), beam.end(), nb);
    if (it != beam.end() && it->id == id && it->dist == dist) return;
    if (beam.size() >= L) {
      if (!(nb < beam.back())) return;
      beam.pop_back();
      processed.pop_back();
    }
    std::size_t pos = static_cast<std::size_t>(it - beam.begin());
    beam.insert(beam.begin() + pos, nb);
    processed.insert(processed.begin() + pos, 0);
  };

  for (PointId s : starts) {
    if (seen.test_and_set(s)) continue;
    insert_candidate(s, pq.adc_distance(table, codes.data(), s));
  }
  while (true) {
    std::size_t pi = 0;
    while (pi < beam.size() && processed[pi]) ++pi;
    if (pi == beam.size()) break;
    processed[pi] = 1;
    PointId current = beam[pi].id;
    float worst = beam.size() >= L ? beam.back().dist
                                   : std::numeric_limits<float>::infinity();
    for (PointId nb_id : g.neighbors(current)) {
      if (seen.test_and_set(nb_id)) continue;
      float d = pq.adc_distance(table, codes.data(), nb_id);
      if (d > worst) continue;
      insert_candidate(nb_id, d);
      worst = beam.size() >= L ? beam.back().dist
                               : std::numeric_limits<float>::infinity();
    }
  }

  // Exact re-rank of the best compressed candidates (one batched bump).
  std::size_t depth = std::min<std::size_t>(
      beam.size(), std::max<std::uint32_t>(rerank, params.k));
  const auto prep = Metric::prepare(query, points.dims());
  std::vector<Neighbor> exact(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    exact[i] = {beam[i].id, Metric::eval(prep, query, points[beam[i].id],
                                         points.dims())};
  }
  DistanceCounter::bump(depth);
  std::sort(exact.begin(), exact.end());
  std::vector<PointId> out;
  for (std::size_t i = 0; i < exact.size() && out.size() < params.k; ++i) {
    out.push_back(exact[i].id);
  }
  return out;
}

}  // namespace ann
