// IVF-Flat: inverted file index over k-means posting lists with exact
// in-list distances (the FAISS-IVF baseline of §5).
//
// Queries rank centroids, scan the nprobe nearest posting lists
// exhaustively, and return the k best candidates. Recall saturates at the
// probability that the true neighbors' lists are among the probed ones —
// the ceiling the paper observes for IVF at high recall (§5.4 finding 2/3).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "parlay/sequence_ops.h"

#include "core/beam_search.h"  // Neighbor
#include "core/io.h"
#include "core/points.h"
#include "ivf/kmeans.h"

namespace ann {

struct IVFParams {
  std::uint32_t num_centroids = 64;
  std::uint32_t kmeans_iters = 8;
  std::uint64_t seed = 8;
};

namespace internal {

// Shared posting-list payload (IVF-Flat and IVF-PQ) with corrupt-header
// guards: fail with a clean runtime_error, never a huge allocation.
inline void write_posting_lists(std::FILE* f,
                                const std::vector<std::vector<PointId>>& lists,
                                const std::string& path) {
  ioutil::write_u32(f, static_cast<std::uint32_t>(lists.size()), path);
  for (const auto& list : lists) {
    ioutil::write_u32(f, static_cast<std::uint32_t>(list.size()), path);
    ioutil::write_bytes(f, list.data(), list.size() * sizeof(PointId), path);
  }
}

inline std::vector<std::vector<PointId>> read_posting_lists(
    std::FILE* f, const std::string& path) {
  std::uint32_t num = ioutil::read_u32(f, path);
  if (num > (1u << 28)) {
    throw std::runtime_error("corrupt ivf header: " + path);
  }
  std::vector<std::vector<PointId>> lists(num);
  for (auto& list : lists) {
    std::uint32_t size = ioutil::read_u32(f, path);
    if (size > (1u << 31)) {
      throw std::runtime_error("corrupt ivf list: " + path);
    }
    list.resize(size);
    ioutil::read_bytes(f, list.data(), list.size() * sizeof(PointId), path);
  }
  return lists;
}

}  // namespace internal

struct IVFQueryParams {
  std::uint32_t nprobe = 4;
  std::uint32_t k = 10;
};

template <typename Metric, typename T>
class IVFFlat {
 public:
  IVFFlat() = default;

  static IVFFlat build(const PointSet<T>& points, const IVFParams& params) {
    IVFFlat index;
    KMeansParams km{.num_clusters = params.num_centroids,
                    .max_iters = params.kmeans_iters,
                    .seed = params.seed};
    auto res = kmeans(points, km);
    index.centroids_ = std::move(res.centroids);
    index.lists_.assign(index.centroids_.size(), {});
    // Deterministic list contents: ids ascend within each list.
    for (std::size_t i = 0; i < points.size(); ++i) {
      index.lists_[res.assignment[i]].push_back(static_cast<PointId>(i));
    }
    return index;
  }

  // Candidates with exact distances, ascending by (dist, id). Distance
  // evaluations use the raw prepared-query kernels with one batched
  // DistanceCounter::bump per phase (centroid ranking, list scan).
  std::vector<Neighbor> query_full(const T* q, const PointSet<T>& points,
                                   const IVFQueryParams& params) const {
    const std::size_t d = points.dims();
    // Rank centroids under the index metric (float copy of q, computed once).
    std::vector<float> qf(d);
    for (std::size_t j = 0; j < d; ++j) qf[j] = static_cast<float>(q[j]);
    const auto cprep = Metric::prepare(qf.data(), d);
    std::vector<Neighbor> order(centroids_.size());
    for (std::uint32_t c = 0; c < centroids_.size(); ++c) {
      order[c] = {c, Metric::eval(cprep, qf.data(), centroids_[c], d)};
    }
    DistanceCounter::bump(centroids_.size());
    std::sort(order.begin(), order.end());
    const std::size_t probes =
        std::min<std::size_t>(params.nprobe, order.size());

    // Exhaustive scan of the probed lists.
    const auto prep = Metric::prepare(q, d);
    std::uint64_t evals = 0;
    std::vector<Neighbor> best;
    best.reserve(params.k + 1);
    for (std::size_t pi = 0; pi < probes; ++pi) {
      evals += lists_[order[pi].id].size();
      for (PointId id : lists_[order[pi].id]) {
        Neighbor nb{id, Metric::eval(prep, q, points[id], d)};
        auto it = std::lower_bound(best.begin(), best.end(), nb);
        if (best.size() < params.k) {
          best.insert(it, nb);
        } else if (it != best.end()) {
          best.insert(it, nb);
          best.pop_back();
        }
      }
    }
    DistanceCounter::bump(evals);
    return best;
  }

  std::vector<PointId> query(const T* q, const PointSet<T>& points,
                             const IVFQueryParams& params) const {
    auto best = query_full(q, points, params);
    std::vector<PointId> ids(best.size());
    for (std::size_t i = 0; i < best.size(); ++i) ids[i] = best[i].id;
    return ids;
  }

  std::size_t num_lists() const { return lists_.size(); }
  const std::vector<PointId>& list(std::size_t c) const { return lists_[c]; }
  const PointSet<float>& centroids() const { return centroids_; }

  // Resident bytes of centroids + posting lists (IndexStats accounting).
  std::size_t memory_bytes() const {
    std::size_t bytes = centroids_.memory_bytes();
    for (const auto& list : lists_) {
      bytes += sizeof(list) + list.capacity() * sizeof(PointId);
    }
    return bytes;
  }

  void save_payload(std::FILE* f, const std::string& path) const {
    ioutil::write_points(f, centroids_, path);
    internal::write_posting_lists(f, lists_, path);
  }

  static IVFFlat load_payload(std::FILE* f, const std::string& path) {
    IVFFlat index;
    index.centroids_ = ioutil::read_points<float>(f, path);
    index.lists_ = internal::read_posting_lists(f, path);
    return index;
  }

 private:
  PointSet<float> centroids_;
  std::vector<std::vector<PointId>> lists_;
};

}  // namespace ann
