// Deterministic parallel Lloyd k-means — the clustering substrate for the
// IVF and PQ baselines (FAISS-style, §5 "Baseline Algorithms").
//
// Determinism: seeding samples distinct input points via a seeded
// permutation; assignment ties break toward the smaller centroid index;
// centroid updates accumulate group members in semisort (id) order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "parlay/parallel.h"
#include "parlay/semisort.h"
#include "parlay/sequence_ops.h"

#include "algorithms/common.h"
#include "core/distance.h"
#include "core/points.h"

namespace ann {

// Distance between a float centroid and a point of any element type
// (counted as a distance comparison like every other kernel). Uses the
// shared 8-lane L2 kernel with float accumulation for the mixed types.
template <typename T>
inline float centroid_distance(const float* c, const T* p, std::size_t d) {
  DistanceCounter::bump();
  return internal::l2_kernel<float, T, float>(c, p, d);
}

struct KMeansParams {
  std::uint32_t num_clusters = 16;
  std::uint32_t max_iters = 10;
  std::uint64_t seed = 7;
};

struct KMeansResult {
  PointSet<float> centroids;
  std::vector<std::uint32_t> assignment;  // point -> cluster
};

// Index of the nearest centroid to p (ties -> smaller index). One batched
// DistanceCounter::bump per scan instead of one per centroid.
template <typename T>
std::uint32_t nearest_centroid(const PointSet<float>& centroids, const T* p,
                               std::size_t d) {
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::infinity();
  for (std::uint32_t c = 0; c < centroids.size(); ++c) {
    float dist = internal::l2_kernel<float, T, float>(centroids[c], p, d);
    if (dist < best_d) {
      best_d = dist;
      best = c;
    }
  }
  DistanceCounter::bump(centroids.size());
  return best;
}

template <typename T>
KMeansResult kmeans(const PointSet<T>& points, const KMeansParams& params) {
  const std::size_t n = points.size();
  const std::size_t d = points.dims();
  const std::uint32_t k =
      static_cast<std::uint32_t>(std::min<std::size_t>(params.num_clusters,
                                                       std::max<std::size_t>(n, 1)));
  KMeansResult res;
  res.centroids = PointSet<float>(k, d);
  res.assignment.assign(n, 0);
  if (n == 0 || k == 0) return res;

  // Seed with k distinct points.
  auto perm = deterministic_permutation(n, params.seed);
  for (std::uint32_t c = 0; c < k; ++c) {
    const T* p = points[perm[c]];
    float* row = res.centroids.mutable_point(c);
    for (std::size_t j = 0; j < d; ++j) row[j] = static_cast<float>(p[j]);
  }

  for (std::uint32_t iter = 0; iter < params.max_iters; ++iter) {
    // Assign.
    auto new_assignment = parlay::tabulate(n, [&](std::size_t i) {
      return nearest_centroid(res.centroids, points[static_cast<PointId>(i)],
                              d);
    });
    bool changed = new_assignment != res.assignment;
    res.assignment = std::move(new_assignment);
    if (!changed && iter > 0) break;

    // Update: group members per cluster (semisort), mean in group order.
    auto pairs = parlay::tabulate(n, [&](std::size_t i) {
      return std::pair<std::uint32_t, PointId>{res.assignment[i],
                                               static_cast<PointId>(i)};
    });
    auto groups = parlay::group_by_key(std::move(pairs));
    parlay::parallel_for(0, groups.size(), [&](std::size_t gi) {
      std::uint32_t c = groups[gi].key;
      const auto& members = groups[gi].values;
      std::vector<double> acc(d, 0.0);
      for (PointId p : members) {
        const T* row = points[p];
        for (std::size_t j = 0; j < d; ++j) acc[j] += static_cast<double>(row[j]);
      }
      float* out = res.centroids.mutable_point(c);
      for (std::size_t j = 0; j < d; ++j) {
        out[j] = static_cast<float>(acc[j] / static_cast<double>(members.size()));
      }
    }, 1);
    // Clusters with no members keep their previous centroid (groups only
    // contains non-empty clusters).
  }
  return res;
}

}  // namespace ann
