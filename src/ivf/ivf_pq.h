// IVF-PQ: inverted lists whose members are scanned in the compressed (PQ)
// domain, with optional exact re-ranking of the best compressed candidates —
// the full FAISS-style pipeline used in the paper's billion-scale baseline
// (appendix A: "OPQ64_128, IVF1048576_HNSW32, PQ128x4fsr").
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/beam_search.h"  // Neighbor
#include "core/points.h"
#include "ivf/ivf_flat.h"
#include "ivf/pq.h"

namespace ann {

struct IVFPQParams {
  IVFParams ivf;
  PQParams pq;
  std::uint32_t rerank = 0;  // exact re-rank depth (0 = no re-ranking)
};

template <typename Metric, typename T>
class IVFPQ {
 public:
  IVFPQ() = default;

  static IVFPQ build(const PointSet<T>& points, const IVFPQParams& params) {
    IVFPQ index;
    index.rerank_ = params.rerank;
    KMeansParams km{.num_clusters = params.ivf.num_centroids,
                    .max_iters = params.ivf.kmeans_iters,
                    .seed = params.ivf.seed};
    auto res = kmeans(points, km);
    index.centroids_ = std::move(res.centroids);
    index.lists_.assign(index.centroids_.size(), {});
    for (std::size_t i = 0; i < points.size(); ++i) {
      index.lists_[res.assignment[i]].push_back(static_cast<PointId>(i));
    }
    index.pq_ = ProductQuantizer<T>::train(points, params.pq);
    index.codes_ = index.pq_.encode(points);
    return index;
  }

  std::vector<PointId> query(const T* q, const PointSet<T>& points,
                             const IVFQueryParams& params) const {
    const std::size_t d = points.dims();
    std::vector<float> qf(d);
    for (std::size_t j = 0; j < d; ++j) qf[j] = static_cast<float>(q[j]);
    std::vector<Neighbor> order(centroids_.size());
    for (std::uint32_t c = 0; c < centroids_.size(); ++c) {
      order[c] = {c, Metric::distance(qf.data(), centroids_[c], d)};
    }
    std::sort(order.begin(), order.end());
    const std::size_t probes =
        std::min<std::size_t>(params.nprobe, order.size());

    auto table = pq_.template adc_table<Metric>(q);
    const std::size_t shortlist =
        rerank_ > 0 ? std::max<std::size_t>(rerank_, params.k) : params.k;
    std::vector<Neighbor> best;
    best.reserve(shortlist + 1);
    for (std::size_t pi = 0; pi < probes; ++pi) {
      for (PointId id : lists_[order[pi].id]) {
        Neighbor nb{id, pq_.adc_distance(table, codes_.data(), id)};
        auto it = std::lower_bound(best.begin(), best.end(), nb);
        if (best.size() < shortlist) {
          best.insert(it, nb);
        } else if (it != best.end()) {
          best.insert(it, nb);
          best.pop_back();
        }
      }
    }
    if (rerank_ > 0) {
      for (auto& nb : best) {
        nb.dist = Metric::distance(q, points[nb.id], d);
      }
      std::sort(best.begin(), best.end());
    }
    if (best.size() > params.k) best.resize(params.k);
    std::vector<PointId> ids(best.size());
    for (std::size_t i = 0; i < best.size(); ++i) ids[i] = best[i].id;
    return ids;
  }

  const ProductQuantizer<T>& quantizer() const { return pq_; }

 private:
  PointSet<float> centroids_;
  std::vector<std::vector<PointId>> lists_;
  ProductQuantizer<T> pq_;
  std::vector<std::uint8_t> codes_;
  std::uint32_t rerank_ = 0;
};

}  // namespace ann
