// IVF-PQ: inverted lists whose members are scanned in the compressed (PQ)
// domain, with optional exact re-ranking of the best compressed candidates —
// the full FAISS-style pipeline used in the paper's billion-scale baseline
// (appendix A: "OPQ64_128, IVF1048576_HNSW32, PQ128x4fsr").
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/beam_search.h"  // Neighbor
#include "core/io.h"
#include "core/points.h"
#include "ivf/ivf_flat.h"
#include "ivf/pq.h"

namespace ann {

struct IVFPQParams {
  IVFParams ivf;
  PQParams pq;
  std::uint32_t rerank = 0;  // exact re-rank depth (0 = no re-ranking)
};

template <typename Metric, typename T>
class IVFPQ {
 public:
  IVFPQ() = default;

  static IVFPQ build(const PointSet<T>& points, const IVFPQParams& params) {
    IVFPQ index;
    index.rerank_ = params.rerank;
    KMeansParams km{.num_clusters = params.ivf.num_centroids,
                    .max_iters = params.ivf.kmeans_iters,
                    .seed = params.ivf.seed};
    auto res = kmeans(points, km);
    index.centroids_ = std::move(res.centroids);
    index.lists_.assign(index.centroids_.size(), {});
    for (std::size_t i = 0; i < points.size(); ++i) {
      index.lists_[res.assignment[i]].push_back(static_cast<PointId>(i));
    }
    index.pq_ = ProductQuantizer<T>::train(points, params.pq);
    index.codes_ = index.pq_.encode(points);
    return index;
  }

  // Candidates ascending by (dist, id); distances are exact when re-ranking
  // is on (rerank > 0), otherwise compressed-domain ADC approximations.
  std::vector<Neighbor> query_full(const T* q, const PointSet<T>& points,
                                   const IVFQueryParams& params) const {
    const std::size_t d = points.dims();
    std::vector<float> qf(d);
    for (std::size_t j = 0; j < d; ++j) qf[j] = static_cast<float>(q[j]);
    const auto cprep = Metric::prepare(qf.data(), d);
    std::vector<Neighbor> order(centroids_.size());
    for (std::uint32_t c = 0; c < centroids_.size(); ++c) {
      order[c] = {c, Metric::eval(cprep, qf.data(), centroids_[c], d)};
    }
    DistanceCounter::bump(centroids_.size());
    std::sort(order.begin(), order.end());
    const std::size_t probes =
        std::min<std::size_t>(params.nprobe, order.size());

    auto table = pq_.template adc_table<Metric>(q);
    const std::size_t shortlist =
        rerank_ > 0 ? std::max<std::size_t>(rerank_, params.k) : params.k;
    std::uint64_t evals = 0;
    std::vector<Neighbor> best;
    best.reserve(shortlist + 1);
    for (std::size_t pi = 0; pi < probes; ++pi) {
      evals += lists_[order[pi].id].size();
      for (PointId id : lists_[order[pi].id]) {
        Neighbor nb{id, pq_.adc_eval(table, codes_.data(), id)};
        auto it = std::lower_bound(best.begin(), best.end(), nb);
        if (best.size() < shortlist) {
          best.insert(it, nb);
        } else if (it != best.end()) {
          best.insert(it, nb);
          best.pop_back();
        }
      }
    }
    if (rerank_ > 0) {
      const auto prep = Metric::prepare(q, d);
      for (auto& nb : best) {
        nb.dist = Metric::eval(prep, q, points[nb.id], d);
      }
      evals += best.size();
      std::sort(best.begin(), best.end());
    }
    DistanceCounter::bump(evals);
    if (best.size() > params.k) best.resize(params.k);
    return best;
  }

  std::vector<PointId> query(const T* q, const PointSet<T>& points,
                             const IVFQueryParams& params) const {
    auto best = query_full(q, points, params);
    std::vector<PointId> ids(best.size());
    for (std::size_t i = 0; i < best.size(); ++i) ids[i] = best[i].id;
    return ids;
  }

  const ProductQuantizer<T>& quantizer() const { return pq_; }

  // Resident bytes of centroids + posting lists + codebooks + codes.
  std::size_t memory_bytes() const {
    std::size_t bytes = centroids_.memory_bytes() + pq_.memory_bytes() +
                        codes_.capacity();
    for (const auto& list : lists_) {
      bytes += sizeof(list) + list.capacity() * sizeof(PointId);
    }
    return bytes;
  }

  void save_payload(std::FILE* f, const std::string& path) const {
    ioutil::write_points(f, centroids_, path);
    internal::write_posting_lists(f, lists_, path);
    pq_.save_payload(f, path);
    ioutil::write_u64(f, codes_.size(), path);
    ioutil::write_bytes(f, codes_.data(), codes_.size(), path);
    ioutil::write_u32(f, rerank_, path);
  }

  static IVFPQ load_payload(std::FILE* f, const std::string& path) {
    IVFPQ index;
    index.centroids_ = ioutil::read_points<float>(f, path);
    index.lists_ = internal::read_posting_lists(f, path);
    index.pq_ = ProductQuantizer<T>::load_payload(f, path);
    std::uint64_t num_codes = ioutil::read_u64(f, path);
    if (num_codes > (1ull << 40)) {
      throw std::runtime_error("corrupt pq codes header: " + path);
    }
    index.codes_.resize(num_codes);
    ioutil::read_bytes(f, index.codes_.data(), index.codes_.size(), path);
    index.rerank_ = ioutil::read_u32(f, path);
    return index;
  }

 private:
  PointSet<float> centroids_;
  std::vector<std::vector<PointId>> lists_;
  ProductQuantizer<T> pq_;
  std::vector<std::uint8_t> codes_;
  std::uint32_t rerank_ = 0;
};

}  // namespace ann
