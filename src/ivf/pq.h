// Product quantization (Jégou et al.) — the compression half of the FAISS
// baseline (§5, appendix A's "PQ compression for the queries").
//
// The d-dimensional space is split into m contiguous subspaces; each
// subspace gets its own 2^nbits-codeword k-means codebook; a vector is
// stored as m code bytes. Queries use asymmetric distance computation
// (ADC): one table of (m x codebook) exact subdistances per query, then a
// table-lookup sum per database vector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "parlay/parallel.h"

#include "core/beam_search.h"  // Neighbor
#include "core/distance.h"
#include "core/io.h"
#include "core/points.h"
#include "ivf/kmeans.h"
#include "quant/quant_kernels.h"

namespace ann {

struct PQParams {
  std::uint32_t num_subspaces = 8;   // m
  std::uint32_t num_codes = 256;     // codebook size per subspace (2^nbits)
  std::uint32_t kmeans_iters = 8;
  std::uint64_t seed = 9;
};

template <typename T>
class ProductQuantizer {
 public:
  ProductQuantizer() = default;

  static ProductQuantizer train(const PointSet<T>& points,
                                const PQParams& params) {
    ProductQuantizer pq;
    const std::size_t d = points.dims();
    pq.m_ = std::min<std::uint32_t>(params.num_subspaces,
                                    static_cast<std::uint32_t>(d));
    pq.d_ = d;
    pq.sub_dims_.resize(pq.m_);
    pq.sub_offsets_.resize(pq.m_);
    // Contiguous subspaces, remainder spread over the first subspaces.
    std::size_t base = d / pq.m_, extra = d % pq.m_, off = 0;
    for (std::uint32_t s = 0; s < pq.m_; ++s) {
      pq.sub_dims_[s] = base + (s < extra ? 1 : 0);
      pq.sub_offsets_[s] = off;
      off += pq.sub_dims_[s];
    }
    // One codebook per subspace, trained on the projected points.
    pq.codebooks_.reserve(pq.m_);
    for (std::uint32_t s = 0; s < pq.m_; ++s) {
      PointSet<float> sub(points.size(), pq.sub_dims_[s]);
      parlay::parallel_for(0, points.size(), [&](std::size_t i) {
        const T* row = points[static_cast<PointId>(i)];
        float* out = sub.mutable_point(static_cast<PointId>(i));
        for (std::size_t j = 0; j < pq.sub_dims_[s]; ++j) {
          out[j] = static_cast<float>(row[pq.sub_offsets_[s] + j]);
        }
      });
      KMeansParams km{.num_clusters = params.num_codes,
                      .max_iters = params.kmeans_iters,
                      .seed = params.seed + s};
      pq.codebooks_.push_back(kmeans(sub, km).centroids);
    }
    return pq;
  }

  // Encode all points to m-byte codes (row-major n x m).
  std::vector<std::uint8_t> encode(const PointSet<T>& points) const {
    std::vector<std::uint8_t> codes(points.size() * m_);
    parlay::parallel_for(0, points.size(), [&](std::size_t i) {
      const T* row = points[static_cast<PointId>(i)];
      for (std::uint32_t s = 0; s < m_; ++s) {
        std::vector<float> sub(sub_dims_[s]);
        for (std::size_t j = 0; j < sub_dims_[s]; ++j) {
          sub[j] = static_cast<float>(row[sub_offsets_[s] + j]);
        }
        codes[i * m_ + s] = static_cast<std::uint8_t>(
            nearest_centroid(codebooks_[s], sub.data(), sub_dims_[s]));
      }
    });
    return codes;
  }

  // Fill a caller-owned ADC table (m x max_codes() floats) for one query:
  // per-subspace subdistances under Metric. Valid for metrics that decompose
  // over subspaces as a sum (L2^2, negative inner product) — NOT cosine.
  // `query_scratch` receives the float-cast query (subspaces are contiguous,
  // so each subspace's slice is passed to the kernels in place); reusing a
  // pooled buffer keeps the quantized search steady state allocation-free.
  // Entries past a codebook's size are left untouched — codes never index
  // them.
  template <typename Metric = EuclideanSquared>
  void fill_adc_table(const T* q, float* table,
                      std::vector<float>& query_scratch) const {
    const std::size_t width = max_codes();
    query_scratch.resize(d_);
    for (std::size_t j = 0; j < d_; ++j) {
      query_scratch[j] = static_cast<float>(q[j]);
    }
    for (std::uint32_t s = 0; s < m_; ++s) {
      const float* sub = query_scratch.data() + sub_offsets_[s];
      const auto prep = Metric::prepare(sub, sub_dims_[s]);
      for (std::uint32_t c = 0; c < codebooks_[s].size(); ++c) {
        table[s * width + c] =
            Metric::eval(prep, sub, codebooks_[s][c], sub_dims_[s]);
      }
      DistanceCounter::bump(codebooks_[s].size());
    }
  }

  // Allocating wrapper around fill_adc_table (the IVF_PQ probe-scan shape).
  template <typename Metric = EuclideanSquared>
  std::vector<float> adc_table(const T* q) const {
    std::vector<float> table(m_ * max_codes(), 0.0f);
    std::vector<float> query_scratch;
    fill_adc_table<Metric>(q, table.data(), query_scratch);
    return table;
  }

  // Raw table-lookup sum for the i-th encoded vector (uncounted; hot scan
  // loops batch their own DistanceCounter::bump). Delegates to the shared
  // quant kernel — the single ADC inner loop in the codebase.
  float adc_eval(const std::vector<float>& table, const std::uint8_t* codes,
                 std::size_t i) const {
    return quant::adc_sum(table.data(), max_codes(), codes + i * m_, m_);
  }

  // Approximate distance of the i-th encoded vector via the ADC table,
  // counted as one compressed-domain comparison.
  float adc_distance(const std::vector<float>& table,
                     const std::uint8_t* codes, std::size_t i) const {
    DistanceCounter::bump();
    return adc_eval(table, codes, i);
  }

  // Exact reconstruction distance (decode-and-compare); used in tests.
  std::vector<float> decode(const std::uint8_t* codes, std::size_t i) const {
    std::vector<float> out(d_, 0.0f);
    for (std::uint32_t s = 0; s < m_; ++s) {
      const float* c = codebooks_[s][codes[i * m_ + s]];
      for (std::size_t j = 0; j < sub_dims_[s]; ++j) {
        out[sub_offsets_[s] + j] = c[j];
      }
    }
    return out;
  }

  std::uint32_t num_subspaces() const { return m_; }
  std::size_t max_codes() const {
    std::size_t w = 0;
    for (const auto& cb : codebooks_) w = std::max(w, cb.size());
    return w;
  }

  // Resident bytes of the trained codebooks (codes are owned by callers).
  std::size_t memory_bytes() const {
    std::size_t total =
        sub_dims_.capacity() * sizeof(std::size_t) +
        sub_offsets_.capacity() * sizeof(std::size_t);
    for (const auto& cb : codebooks_) total += cb.memory_bytes();
    return total;
  }

  void save_payload(std::FILE* f, const std::string& path) const {
    ioutil::write_u32(f, m_, path);
    ioutil::write_u64(f, d_, path);
    for (std::uint32_t s = 0; s < m_; ++s) {
      ioutil::write_u64(f, sub_dims_[s], path);
      ioutil::write_u64(f, sub_offsets_[s], path);
      ioutil::write_points(f, codebooks_[s], path);
    }
  }

  static ProductQuantizer load_payload(std::FILE* f, const std::string& path) {
    ProductQuantizer pq;
    pq.m_ = ioutil::read_u32(f, path);
    pq.d_ = ioutil::read_u64(f, path);
    // Corrupt-header guard: fail cleanly, never allocate from garbage.
    if (pq.m_ > (1u << 16) || pq.d_ > (1ull << 24)) {
      throw std::runtime_error("corrupt pq header: " + path);
    }
    pq.sub_dims_.resize(pq.m_);
    pq.sub_offsets_.resize(pq.m_);
    pq.codebooks_.reserve(pq.m_);
    for (std::uint32_t s = 0; s < pq.m_; ++s) {
      pq.sub_dims_[s] = ioutil::read_u64(f, path);
      pq.sub_offsets_[s] = ioutil::read_u64(f, path);
      pq.codebooks_.push_back(ioutil::read_points<float>(f, path));
    }
    return pq;
  }

 private:
  std::uint32_t m_ = 0;
  std::size_t d_ = 0;
  std::vector<std::size_t> sub_dims_;
  std::vector<std::size_t> sub_offsets_;
  std::vector<PointSet<float>> codebooks_;
};

}  // namespace ann
