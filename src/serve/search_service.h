// ann::SearchService — the serving layer: an asynchronous batching front
// end over AnyIndex::batch_search (see docs/SERVING.md for the operator
// guide).
//
//   ann::AnyIndex index = ann::make_index(spec);
//   index.build(points);
//   ann::SearchService<std::uint8_t> service(std::move(index),
//                                            {.max_batch = 64,
//                                             .max_delay_ms = 1.0});
//   auto future = service.submit(query, {.beam_width = 40, .k = 10});
//   auto hits = future.get();          // std::vector<Neighbor>
//   service.shutdown();                // drain + join (also in ~SearchService)
//
// Design:
//   * Submission is a lock-light MPMC ring (serve/mpmc_queue.h) with exact
//     admission control: an atomic credit counter bounds the queue at
//     ServeParams::queue_capacity, and when it is full submit() either
//     blocks (kBlock) or throws ann::queue_full (kReject).
//   * A single dispatcher thread runs the adaptive micro-batcher: it
//     coalesces queued requests until either max_batch requests are in hand
//     or the OLDEST request has waited max_delay_ms, then executes the
//     batch. Under saturation batches fill instantly (amortizing fan-out
//     overhead); under trickle load the deadline bounds added latency.
//   * Execution groups a flushed batch by identical QueryParams (per-request
//     k / beam / epsilon / visit_limit overrides) and runs one
//     AnyIndex::batch_search per group, so every request is answered with
//     exactly the parameters it asked for.
//   * Requests may carry a per-request ann::FilterSpec (the filtered submit
//     overloads). Filtered requests group with requests carrying the SAME
//     label clause (mode + label ids) and dispatch through one
//     AnyIndex::filtered_batch_search; mixed filtered/unfiltered flushes
//     simply split into groups. Specs carrying the std::function escape
//     hatch never group (a callable has no equality), so each dispatches
//     alone — correct, just unbatched. stats() reports the filtered request
//     count and the mean estimated selectivity of dispatched filters.
//   * Quantized traffic (the submit_quantized overloads) rides the same
//     micro-batcher: quantized requests group only with other quantized
//     requests carrying identical QueryParams (rerank_count included) and
//     dispatch through one AnyIndex::quantized_batch_search. The served
//     index must have a code store attached (AnyIndex::attach_quantized) —
//     checked at submit time, not as a failed future at dispatch time.
//     stats() reports the quantized request count.
//   * Completion is per-request: submit() returns a std::future, or the
//     callback overload invokes the callback on the dispatcher thread
//     (callbacks must be fast and must not throw).
//   * Requests may carry a deadline (SubmitOptions::deadline_ms): one that
//     is still queued when its deadline passes is failed with
//     ann::deadline_exceeded at the next flush instead of being searched —
//     under overload, work the client has given up on is shed, not served.
//   * Optional overload degradation (ServeParams::degrade, OFF by default):
//     when the queue depth crosses the high watermark, dispatched requests
//     run with beam_width stepped down (bounded below by min_beam), trading
//     recall for drain rate. Degraded results are OUTSIDE the determinism
//     contract — identical traffic may see different pressure — which is
//     why the feature must be opted into; with it off, served results
//     remain element-wise identical to direct batch_search.
//   * swap_index() replaces the served index with zero drain: submissions
//     and in-flight batches keep using the snapshot they started with
//     (epoch-style shared_ptr refcount), new batches pick up the new index,
//     and the old one is destroyed when its last batch completes. No
//     accepted future is ever dropped by a swap.
//   * shutdown() stops admission (later submits throw std::logic_error),
//     drains every request already accepted, then joins the dispatcher.
//     Every future obtained from a successful submit() is fulfilled.
//
// Determinism boundary (engineered, tested in tests/test_serving.cpp):
// arrival order — and therefore batch composition — is nondeterministic by
// design, but the per-query engine below is deterministic and shares no
// mutable state across queries, so each request's RESULT is element-wise
// identical to a direct AnyIndex::batch_search with the same parameters, no
// matter how the micro-batcher sliced the traffic.
//
// Scheduler interplay: the dispatcher drives parlay parallel regions (the
// batch_search fan-out), and the scheduler allows one external driver at a
// time. Multiple live services serialize their batch executions on an
// internal mutex, but application threads must not drive parallel regions
// of their own while a service is running. Client threads calling submit()
// never touch the scheduler, so any number of them is fine.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/any_index.h"
#include "core/error.h"
#include "core/stats.h"
#include "serve/mpmc_queue.h"

namespace ann {

// queue_full and deadline_exceeded live in core/error.h with the rest of
// the error taxonomy; submit() throws the former under kReject saturation,
// and the latter is delivered through the future/callback of a request
// whose deadline passed while it sat in the queue.

enum class BackpressurePolicy {
  kBlock,   // submit() waits for queue space: throttles producers to the
            // service's throughput (closed-loop clients)
  kReject,  // submit() throws ann::queue_full immediately: sheds load so
            // producer latency stays bounded (open-loop clients)
};

// Overload-degradation policy: OFF by default (queue_high_watermark == 0).
// When enabled, a flush that finds the queue depth at or above k times the
// watermark dispatches its groups with beam_width reduced by k * beam_step,
// never below min_beam, the request's k, or the request's own beam
// (whichever bound binds): degradation trades recall, never answers — a
// degraded request still receives its full k results. Degraded
// results trade recall for drain rate and sit OUTSIDE the determinism
// contract — the same traffic replayed under different pressure may answer
// differently — so enabling it is an explicit operator decision.
struct DegradeParams {
  std::size_t queue_high_watermark = 0;  // 0 = degradation disabled
  std::uint32_t beam_step = 8;           // beam reduction per pressure level
  std::uint32_t min_beam = 8;            // hard floor for the reduced beam
};

struct ServeParams {
  // Flush a batch when this many requests have coalesced.
  std::size_t max_batch = 64;
  // ... or when the oldest queued request has waited this long (the added
  // latency bound under trickle load). 0 flushes whatever one drain finds.
  double max_delay_ms = 1.0;
  // Exact bound on queued-but-not-yet-dispatched requests.
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  DegradeParams degrade;
};

// Per-request submission options (beyond the search parameters themselves).
struct SubmitOptions {
  // Fail the request with ann::deadline_exceeded if it is still waiting in
  // the submission queue this many milliseconds after admission. 0 = no
  // deadline. The check runs at flush time: a request that entered a batch
  // before expiring is searched and answered normally.
  double deadline_ms = 0;
};

// Snapshot of a service's counters, same idiom as IndexStats: the headline
// figures as named fields plus everything as key/value details.
struct ServeStats {
  std::uint64_t submitted = 0;   // accepted into the queue
  std::uint64_t completed = 0;   // futures fulfilled / callbacks run
  std::uint64_t rejected = 0;    // thrown queue_full (kReject only)
  std::uint64_t batches = 0;     // micro-batcher flushes
  std::uint64_t dispatches = 0;  // batch_search calls (>= batches: one per
                                 // distinct QueryParams group in a flush)
  double uptime_s = 0;
  double qps = 0;                  // completed / uptime
  double mean_batch_occupancy = 0; // completed / batches
  double mean_latency_ms = 0;      // submit -> completion, per request
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::uint64_t distance_comps = 0;  // summed over dispatched batches
  std::size_t queue_depth = 0;       // instantaneous
  std::uint64_t filtered = 0;        // requests dispatched with an active filter
  std::uint64_t quantized = 0;       // requests dispatched via quantized_search
  std::uint64_t expired = 0;         // failed with deadline_exceeded in queue
  std::uint64_t degraded = 0;        // served with a pressure-reduced beam
  std::uint64_t swaps = 0;           // swap_index() calls
  // Mean estimated selectivity over dispatched filtered requests (0 when
  // none ran): how much of the index the average filter admits.
  double mean_filter_selectivity = 0;

  std::vector<std::pair<std::string, double>> details;

  double detail(const std::string& key, double fallback = 0.0) const {
    return kv_get(details, key, fallback);
  }
};

namespace internal {
// One external thread may drive parlay parallel regions at a time (see
// src/parlay/scheduler.h); every service's dispatcher funnels its
// batch_search calls through this mutex so multiple live services coexist.
inline std::mutex& serving_dispatch_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace internal

template <typename T>
class SearchService {
 public:
  // Invoked on the dispatcher thread. Exactly one of (result, error) is
  // meaningful: error is nullptr on success. Callbacks must be fast (they
  // sit on the dispatch path) and must not throw.
  using Callback =
      std::function<void(std::vector<Neighbor> result, std::exception_ptr error)>;

  // Takes ownership of a BUILT index (serving an empty index is rejected
  // with std::invalid_argument, as is a dtype mismatch between T and the
  // index, a zero queue_capacity, or a zero max_batch).
  explicit SearchService(AnyIndex index, const ServeParams& params = {})
      : index_(std::make_shared<const AnyIndex>(std::move(index))),
        params_(validated(params)),
        queue_(params.queue_capacity) {
    const IndexStats s = validated_index_stats(*index_);
    dims_ = s.dims;
    num_points_.store(s.num_points, std::memory_order_relaxed);
    start_ = std::chrono::steady_clock::now();
    dispatcher_ = std::thread([this] { dispatch_loop(); });
  }

  ~SearchService() { shutdown(); }

  SearchService(const SearchService&) = delete;
  SearchService& operator=(const SearchService&) = delete;

  // The CURRENT index snapshot. The shared_ptr keeps it alive across a
  // concurrent swap_index(); the reference-returning index() remains for
  // callers that do not swap.
  std::shared_ptr<const AnyIndex> index_snapshot() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return index_;
  }
  const AnyIndex& index() const { return *index_snapshot(); }
  const ServeParams& params() const { return params_; }
  std::size_t dims() const { return dims_; }

  // Replace the served index with ZERO drain: no pause in admission, no
  // barrier on in-flight work. Batches already executing (and requests
  // already grouped with a snapshot) finish on the index they started
  // with — the shared_ptr refcount is the epoch — and every flush after
  // the swap picks up the new index. The replacement must be built,
  // non-empty, hold this service's dtype, and serve the SAME
  // dimensionality (queued queries were validated against dims()).
  // Requests admitted before the swap may be answered by either index;
  // each is answered completely by exactly one.
  void swap_index(AnyIndex replacement) {
    auto next = std::make_shared<const AnyIndex>(std::move(replacement));
    const IndexStats s = validated_index_stats(*next);
    if (s.dims != dims_) {
      throw std::invalid_argument(
          "SearchService::swap_index: replacement index holds dims " +
          std::to_string(s.dims) + " but the service serves dims " +
          std::to_string(dims_));
    }
    num_points_.store(s.num_points, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(index_mutex_);
      index_.swap(next);
    }
    swaps_.fetch_add(1, std::memory_order_relaxed);
    // `next` (the OLD index) dies here unless an in-flight batch still
    // holds its snapshot, in which case the last batch to finish frees it.
  }

  // --- submission ------------------------------------------------------------

  // The query span must be exactly dims() long (std::invalid_argument
  // otherwise); its contents are copied, so the caller's buffer may be
  // reused the moment submit returns. Throws std::logic_error after
  // shutdown and ann::queue_full when saturated under kReject.
  std::future<std::vector<Neighbor>> submit(std::span<const T> query,
                                            const QueryParams& params = {}) {
    auto req = make_request(query, params);
    auto future = req->promise.get_future();
    enqueue(std::move(req));
    return future;
  }

  // Deadline-carrying submission: if the request is still queued
  // opts.deadline_ms after admission, its future is failed with
  // ann::deadline_exceeded instead of being searched.
  std::future<std::vector<Neighbor>> submit(std::span<const T> query,
                                            const QueryParams& params,
                                            const SubmitOptions& opts) {
    auto req = make_request(query, params, {}, opts);
    auto future = req->promise.get_future();
    enqueue(std::move(req));
    return future;
  }

  // Pointer convenience overload; reads dims() elements.
  std::future<std::vector<Neighbor>> submit(const T* query,
                                            const QueryParams& params = {}) {
    return submit(std::span<const T>(query, dims_), params);
  }

  // Callback completion path (no future allocated).
  void submit(std::span<const T> query, const QueryParams& params,
              Callback callback) {
    auto req = make_request(query, params);
    req->callback = std::move(callback);
    enqueue(std::move(req));
  }

  // --- filtered submission ---------------------------------------------------

  // Per-request filtered search: the request is answered element-wise
  // identically to AnyIndex::filtered_search(query, filter, params). A spec
  // that references labels is rejected here (std::invalid_argument) when
  // the served index has no LabelStore attached — at submit time, not as a
  // failed future at dispatch time.
  std::future<std::vector<Neighbor>> submit(std::span<const T> query,
                                            const FilterSpec& filter,
                                            const QueryParams& params = {},
                                            const SubmitOptions& opts = {}) {
    auto req = make_request(query, params, filter, opts);
    auto future = req->promise.get_future();
    enqueue(std::move(req));
    return future;
  }

  std::future<std::vector<Neighbor>> submit(const T* query,
                                            const FilterSpec& filter,
                                            const QueryParams& params = {}) {
    return submit(std::span<const T>(query, dims_), filter, params);
  }

  // Filtered callback completion path.
  void submit(std::span<const T> query, const FilterSpec& filter,
              const QueryParams& params, Callback callback) {
    auto req = make_request(query, params, filter);
    req->callback = std::move(callback);
    enqueue(std::move(req));
  }

  // --- quantized submission --------------------------------------------------

  // Per-request quantized search: answered element-wise identically to
  // AnyIndex::quantized_search(query, params) — compressed-domain traversal
  // plus exact rerank of the top params.rerank_count candidates. Rejected
  // with std::invalid_argument at submit time when the served index has no
  // code store attached (AnyIndex::attach_quantized / a loaded container
  // carrying a quantized payload).
  std::future<std::vector<Neighbor>> submit_quantized(
      std::span<const T> query, const QueryParams& params = {},
      const SubmitOptions& opts = {}) {
    auto req = make_request(query, params, {}, opts);
    req->quantized = true;
    require_quantized();
    auto future = req->promise.get_future();
    enqueue(std::move(req));
    return future;
  }

  std::future<std::vector<Neighbor>> submit_quantized(
      const T* query, const QueryParams& params = {}) {
    return submit_quantized(std::span<const T>(query, dims_), params);
  }

  // Quantized callback completion path.
  void submit_quantized(std::span<const T> query, const QueryParams& params,
                        Callback callback) {
    auto req = make_request(query, params);
    req->quantized = true;
    require_quantized();
    req->callback = std::move(callback);
    enqueue(std::move(req));
  }

  // All-or-nothing batch submission: either every row is admitted (futures
  // returned in row order) or none is — a kReject overflow throws
  // queue_full without enqueueing anything, so no future is ever lost.
  std::vector<std::future<std::vector<Neighbor>>> submit_batch(
      const PointSet<T>& queries, const QueryParams& params = {}) {
    return submit_batch(queries, FilterSpec{}, params);
  }

  // Filtered batch submission: one FilterSpec applied to every row, same
  // all-or-nothing admission as the unfiltered overload.
  std::vector<std::future<std::vector<Neighbor>>> submit_batch(
      const PointSet<T>& queries, const FilterSpec& filter,
      const QueryParams& params = {}) {
    if (queries.dims() != dims_) {
      throw std::invalid_argument(
          "SearchService::submit_batch: query batch has dims " +
          std::to_string(queries.dims()) + " but the index holds dims " +
          std::to_string(dims_));
    }
    const std::size_t n = queries.size();
    std::vector<std::unique_ptr<Request>> requests;
    std::vector<std::future<std::vector<Neighbor>>> futures;
    requests.reserve(n);
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto req = make_request(
          std::span<const T>(queries[static_cast<PointId>(i)], dims_), params,
          filter);
      futures.push_back(req->promise.get_future());
      requests.push_back(std::move(req));
    }
    enqueue_all(requests);
    return futures;
  }

  // --- lifecycle -------------------------------------------------------------

  // Stop admission, drain every accepted request, join the dispatcher.
  // Idempotent and safe to call concurrently; later submits throw
  // std::logic_error. Every future from a successful submit is fulfilled
  // before shutdown returns.
  void shutdown() {
    {
      std::unique_lock<std::shared_mutex> lock(lifecycle_mutex_);
      accepting_ = false;
    }
    stop_.store(true, std::memory_order_release);
    { std::lock_guard<std::mutex> wake_lock(wake_mutex_); }
    wake_cv_.notify_all();
    space_cv_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mutex_);
    if (dispatcher_.joinable()) dispatcher_.join();
  }

  // --- monitoring ------------------------------------------------------------

  ServeStats stats() const {
    ServeStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.dispatches = dispatches_.load(std::memory_order_relaxed);
    s.uptime_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start_).count();
    s.qps = s.uptime_s > 0
                ? static_cast<double>(s.completed) / s.uptime_s
                : 0.0;
    s.mean_batch_occupancy =
        s.batches > 0
            ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
            : 0.0;
    s.mean_latency_ms = latency_.mean_ms();
    s.p50_ms = latency_.percentile_ms(50);
    s.p95_ms = latency_.percentile_ms(95);
    s.p99_ms = latency_.percentile_ms(99);
    s.distance_comps = distance_comps_.load(std::memory_order_relaxed);
    s.queue_depth = queued_.load(std::memory_order_relaxed);
    s.filtered = filtered_.load(std::memory_order_relaxed);
    s.quantized = quantized_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.swaps = swaps_.load(std::memory_order_relaxed);
    // Selectivity is accumulated in integer micro-units so the hot path
    // needs no atomic<double> RMW (fetch_add on doubles is C++20-optional).
    s.mean_filter_selectivity =
        s.filtered > 0
            ? static_cast<double>(selectivity_micro_.load(
                  std::memory_order_relaxed)) /
                  (1e6 * static_cast<double>(s.filtered))
            : 0.0;
    s.details = {
        {"submitted", static_cast<double>(s.submitted)},
        {"completed", static_cast<double>(s.completed)},
        {"rejected", static_cast<double>(s.rejected)},
        {"batches", static_cast<double>(s.batches)},
        {"dispatches", static_cast<double>(s.dispatches)},
        {"uptime_s", s.uptime_s},
        {"qps", s.qps},
        {"mean_batch_occupancy", s.mean_batch_occupancy},
        {"mean_latency_ms", s.mean_latency_ms},
        {"p50_ms", s.p50_ms},
        {"p95_ms", s.p95_ms},
        {"p99_ms", s.p99_ms},
        {"distance_comps", static_cast<double>(s.distance_comps)},
        {"queue_depth", static_cast<double>(s.queue_depth)},
        {"filtered", static_cast<double>(s.filtered)},
        {"quantized", static_cast<double>(s.quantized)},
        {"expired", static_cast<double>(s.expired)},
        {"degraded", static_cast<double>(s.degraded)},
        {"swaps", static_cast<double>(s.swaps)},
        {"mean_filter_selectivity", s.mean_filter_selectivity},
    };
    return s;
  }

 private:
  struct Request {
    std::vector<T> query;
    QueryParams params;
    FilterSpec filter;       // inactive for plain submits
    bool quantized = false;  // dispatch via quantized_batch_search
    double deadline_ms = 0;  // 0 = no deadline
    std::promise<std::vector<Neighbor>> promise;
    Callback callback;  // empty => promise completion path
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  // set iff deadline_ms > 0
  };

  // Shared by the constructor and swap_index: the index must be a valid
  // handle, hold this service's dtype, and be built and non-empty.
  static IndexStats validated_index_stats(const AnyIndex& index) {
    if (!index.valid()) {
      throw std::invalid_argument(
          "SearchService: index handle is empty (use ann::make_index)");
    }
    if (index.spec().dtype != dtype_name<T>()) {
      throw std::invalid_argument(
          std::string("SearchService: index holds dtype '") +
          index.spec().dtype + "' but the service is instantiated for '" +
          dtype_name<T>() + "'");
    }
    IndexStats s = index.stats();
    if (s.num_points == 0 || s.dims == 0) {
      throw std::invalid_argument(
          "SearchService: index must be built and non-empty before serving");
    }
    return s;
  }

  void require_quantized() const {
    if (!index_snapshot()->has_quantized()) {
      throw std::invalid_argument(
          "SearchService::submit_quantized: the served index has no code "
          "store attached (AnyIndex::attach_quantized)");
    }
  }

  static const ServeParams& validated(const ServeParams& params) {
    if (params.max_batch == 0) {
      throw std::invalid_argument("ServeParams: max_batch must be positive");
    }
    if (params.queue_capacity == 0) {
      throw std::invalid_argument(
          "ServeParams: queue_capacity must be positive");
    }
    if (params.max_delay_ms < 0) {
      throw std::invalid_argument(
          "ServeParams: max_delay_ms must be non-negative");
    }
    if (params.degrade.queue_high_watermark != 0 &&
        (params.degrade.beam_step == 0 || params.degrade.min_beam == 0)) {
      throw std::invalid_argument(
          "ServeParams: degrade.beam_step and degrade.min_beam must be "
          "positive when degradation is enabled");
    }
    if (params.degrade.queue_high_watermark > params.queue_capacity) {
      throw std::invalid_argument(
          "ServeParams: degrade.queue_high_watermark exceeds queue_capacity "
          "(the watermark could never trip)");
    }
    return params;
  }

  std::unique_ptr<Request> make_request(std::span<const T> query,
                                        const QueryParams& params,
                                        const FilterSpec& filter = {},
                                        const SubmitOptions& opts = {}) {
    if (query.size() != dims_) {
      throw std::invalid_argument(
          "SearchService::submit: query has " + std::to_string(query.size()) +
          " elements but the index holds dims " + std::to_string(dims_));
    }
    if (filter.uses_labels() && !index_snapshot()->has_labels()) {
      throw std::invalid_argument(
          "SearchService::submit: FilterSpec references labels but the "
          "served index has no LabelStore attached");
    }
    if (opts.deadline_ms < 0) {
      throw std::invalid_argument(
          "SubmitOptions: deadline_ms must be non-negative");
    }
    auto req = std::make_unique<Request>();
    req->query.assign(query.begin(), query.end());
    req->params = params;
    req->filter = filter;
    req->deadline_ms = opts.deadline_ms;
    return req;
  }

  // Admission + push under one shared lifecycle lock: a request that gets
  // in happened-before any shutdown flip, so the dispatcher's post-stop
  // drain is guaranteed to see it. The kBlock wait loop drops the lock
  // between attempts (a blocked producer must never stall shutdown) and
  // uses the scheduler's timed-wait idiom, tolerating missed wakeups.
  void enqueue(std::unique_ptr<Request> req) {
    std::unique_ptr<Request>* one = &req;
    enqueue_span({one, 1});
  }

  void enqueue_all(std::vector<std::unique_ptr<Request>>& requests) {
    if (requests.empty()) return;
    enqueue_span({requests.data(), requests.size()});
  }

  void enqueue_span(std::span<std::unique_ptr<Request>> requests) {
    const std::size_t n = requests.size();
    if (n > params_.queue_capacity) {
      throw std::invalid_argument(
          "SearchService::submit_batch: batch of " + std::to_string(n) +
          " exceeds queue_capacity " + std::to_string(params_.queue_capacity));
    }
    for (;;) {
      {
        std::shared_lock<std::shared_mutex> lock(lifecycle_mutex_);
        if (!accepting_) {
          throw std::logic_error(
              "SearchService::submit after shutdown");
        }
        std::size_t cur = queued_.load(std::memory_order_relaxed);
        bool admitted = false;
        while (cur + n <= params_.queue_capacity) {
          if (queued_.compare_exchange_weak(cur, cur + n,
                                            std::memory_order_relaxed)) {
            admitted = true;
            break;
          }
        }
        if (admitted) {
          auto now = std::chrono::steady_clock::now();
          for (std::unique_ptr<Request>& req : requests) {
            req->enqueued = now;
            if (req->deadline_ms > 0) {
              req->deadline =
                  now + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                req->deadline_ms));
            }
            // Admission reserved a slot, so a push only fails transiently
            // (a concurrent pop mid-flight in the target cell).
            while (!queue_.try_push(std::move(req))) std::this_thread::yield();
          }
          submitted_.fetch_add(n, std::memory_order_relaxed);
          // Lock-then-notify: acquiring wake_mutex_ serializes with the
          // dispatcher's own queued_-check-then-wait (done under the same
          // mutex), so its idle wait can be unbounded — no polling — with
          // no lost-wakeup window.
          { std::lock_guard<std::mutex> wake_lock(wake_mutex_); }
          wake_cv_.notify_one();
          return;
        }
        if (params_.backpressure == BackpressurePolicy::kReject) {
          rejected_.fetch_add(n, std::memory_order_relaxed);
          throw queue_full(
              "SearchService: submission queue full (capacity " +
              std::to_string(params_.queue_capacity) + ")");
        }
      }
      std::unique_lock<std::mutex> wait_lock(space_mutex_);
      space_cv_.wait_for(wait_lock, std::chrono::microseconds(200));
    }
  }

  bool pop_one(std::unique_ptr<Request>& out) {
    if (!queue_.try_pop(out)) return false;
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (params_.backpressure == BackpressurePolicy::kBlock) {
      space_cv_.notify_all();
    }
    return true;
  }

  void dispatch_loop() {
    const auto max_delay = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(params_.max_delay_ms));
    std::vector<std::unique_ptr<Request>> batch;
    batch.reserve(params_.max_batch);
    for (;;) {
      // Wait for the first request of the next batch (or drained stop).
      // The idle wait is unbounded, not polled: producers and shutdown()
      // acquire wake_mutex_ before notifying, and the queued_/stop_ check
      // happens under it, so a wakeup can never be lost. A nonzero
      // queued_ with a failing pop means a push is mid-flight — loop.
      std::unique_ptr<Request> first;
      while (!pop_one(first)) {
        if (stop_.load(std::memory_order_acquire)) {
          // One more look now that the stop flag (and so every push that
          // preceded it) is visible: the post-shutdown drain guarantee.
          if (pop_one(first)) break;
          return;
        }
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (queued_.load(std::memory_order_relaxed) == 0 &&
            !stop_.load(std::memory_order_acquire)) {
          wake_cv_.wait(lock);
        }
      }
      batch.push_back(std::move(first));
      const auto deadline = batch.front()->enqueued + max_delay;
      // Coalesce until max_batch or the oldest request's deadline (skip
      // the wait during shutdown: flush immediately).
      while (batch.size() < params_.max_batch) {
        std::unique_ptr<Request> next;
        if (pop_one(next)) {
          batch.push_back(std::move(next));
          continue;
        }
        if (stop_.load(std::memory_order_acquire)) break;
        if (std::chrono::steady_clock::now() >= deadline) break;
        // Batch open: sleep straight toward the deadline; a new arrival's
        // notify (or shutdown) wakes us early to keep filling.
        std::unique_lock<std::mutex> lock(wake_mutex_);
        if (queued_.load(std::memory_order_relaxed) == 0 &&
            !stop_.load(std::memory_order_acquire)) {
          wake_cv_.wait_until(lock, deadline);
        }
      }
      execute_batch(batch);
      batch.clear();
    }
  }

  static bool same_params(const QueryParams& a, const QueryParams& b) {
    return a.beam_width == b.beam_width && a.k == b.k &&
           a.epsilon == b.epsilon && a.visit_limit == b.visit_limit &&
           a.filter_beam_factor == b.filter_beam_factor &&
           a.rerank_count == b.rerank_count;
  }

  // Two requests may share a filtered_batch_search call only when their
  // filters are provably identical: same label clause and NO std::function
  // escape hatch (callables have no equality, so a predicate-carrying spec
  // never groups — it dispatches alone). Two inactive filters compare
  // equal, so plain requests keep grouping as before.
  static bool same_filter(const FilterSpec& a, const FilterSpec& b) {
    if (a.predicate || b.predicate) return false;
    return a.mode == b.mode && a.labels == b.labels;
  }

  // Fail every request whose deadline passed while it waited in the queue
  // (ann::deadline_exceeded through its normal completion path) and compact
  // the survivors in place. Expiry is judged once per flush, against one
  // clock sample, so requests in the same batch are judged consistently.
  void expire_overdue(std::vector<std::unique_ptr<Request>>& batch) {
    const auto now = std::chrono::steady_clock::now();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Request& req = *batch[i];
      if (req.deadline_ms > 0 && now >= req.deadline) {
        expired_.fetch_add(1, std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
        auto error = std::make_exception_ptr(deadline_exceeded(
            "SearchService: request expired in queue after " +
            std::to_string(req.deadline_ms) + " ms"));
        if (req.callback) {
          try {
            req.callback({}, error);
          } catch (...) {
            // Same contract as execute_group: callbacks must not throw.
          }
        } else {
          req.promise.set_exception(error);
        }
        continue;
      }
      batch[kept++] = std::move(batch[i]);
    }
    batch.resize(kept);
  }

  // Pressure level for overload degradation: how many times the current
  // queue depth clears the high watermark (0 = policy off or no pressure).
  std::uint32_t pressure_level() const {
    const std::size_t watermark = params_.degrade.queue_high_watermark;
    if (watermark == 0) return 0;
    return static_cast<std::uint32_t>(
        queued_.load(std::memory_order_relaxed) / watermark);
  }

  void execute_batch(std::vector<std::unique_ptr<Request>>& batch) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    expire_overdue(batch);
    if (batch.empty()) return;
    // One pressure sample per flush: every group in this batch degrades (or
    // not) together, and grouping stays keyed on the REQUESTED params.
    const std::uint32_t pressure = pressure_level();
    std::vector<char> grouped(batch.size(), 0);
    std::vector<std::size_t> group;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (grouped[i]) continue;
      group.clear();
      group.push_back(i);
      grouped[i] = 1;
      for (std::size_t j = i + 1; j < batch.size(); ++j) {
        if (!grouped[j] &&
            batch[i]->quantized == batch[j]->quantized &&
            same_params(batch[i]->params, batch[j]->params) &&
            same_filter(batch[i]->filter, batch[j]->filter)) {
          group.push_back(j);
          grouped[j] = 1;
        }
      }
      execute_group(batch, group, pressure);
    }
  }

  // The effective parameters for a group under `pressure` levels of
  // overload: beam_width stepped down by pressure * beam_step, floored at
  // min_beam (or the requested beam, if it was already smaller). The floor
  // never drops below the requested k — a beam narrower than k would
  // shrink the RESULT SET, and degradation trades recall, not answers.
  QueryParams degraded_params(const QueryParams& requested,
                              std::uint32_t pressure) const {
    if (pressure == 0) return requested;
    const std::uint64_t cut =
        static_cast<std::uint64_t>(pressure) * params_.degrade.beam_step;
    const std::uint32_t floor = std::min<std::uint32_t>(
        requested.beam_width,
        std::max<std::uint32_t>(params_.degrade.min_beam, requested.k));
    QueryParams p = requested;
    p.beam_width = cut >= requested.beam_width - floor
                       ? floor
                       : requested.beam_width -
                             static_cast<std::uint32_t>(cut);
    return p;
  }

  void execute_group(std::vector<std::unique_ptr<Request>>& batch,
                     const std::vector<std::size_t>& group,
                     std::uint32_t pressure) {
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    // The group's epoch: this snapshot pins the index for the whole
    // dispatch, so a concurrent swap_index() never invalidates it and the
    // old index survives exactly until its last in-flight group completes.
    const std::shared_ptr<const AnyIndex> index = index_snapshot();
    PointSet<T> queries(group.size(), dims_);
    for (std::size_t g = 0; g < group.size(); ++g) {
      queries.set_point(static_cast<PointId>(g), batch[group[g]]->query.data());
    }
    const QueryParams effective =
        degraded_params(batch[group[0]]->params, pressure);
    if (effective.beam_width != batch[group[0]]->params.beam_width) {
      degraded_.fetch_add(group.size(), std::memory_order_relaxed);
    }
    std::vector<std::vector<Neighbor>> results;
    std::exception_ptr error;
    const FilterSpec& filter = batch[group[0]]->filter;
    const std::uint64_t comps_before = DistanceCounter::total();
    const bool quantized = batch[group[0]]->quantized;
    try {
      std::lock_guard<std::mutex> lock(internal::serving_dispatch_mutex());
      if (quantized) {
        results =
            index->template quantized_batch_search<T>(queries, effective);
      } else if (filter.active()) {
        results = index->template filtered_batch_search<T>(queries, filter,
                                                           effective);
      } else {
        results = index->template batch_search<T>(queries, effective);
      }
    } catch (...) {
      error = std::current_exception();
    }
    if (quantized) {
      quantized_.fetch_add(group.size(), std::memory_order_relaxed);
    }
    if (filter.active()) {
      filtered_.fetch_add(group.size(), std::memory_order_relaxed);
      // Counted even when the dispatch errored: the request was filtered
      // traffic either way. Selectivity comes from the same estimator the
      // search itself used to size its effort.
      BoundFilter bound(filter, index->labels_ptr().get());
      const double sel = bound.estimated_selectivity(
          num_points_.load(std::memory_order_relaxed));
      selectivity_micro_.fetch_add(
          static_cast<std::uint64_t>(sel * 1e6) * group.size(),
          std::memory_order_relaxed);
    }
    // Counter deltas, not a reset: the counter is process-global and a
    // DistanceCounterScope may be live around the whole serving run.
    const std::uint64_t comps_after = DistanceCounter::total();
    if (comps_after >= comps_before) {
      distance_comps_.fetch_add(comps_after - comps_before,
                                std::memory_order_relaxed);
    }
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t g = 0; g < group.size(); ++g) {
      Request& req = *batch[group[g]];
      latency_.record_ns(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                               req.enqueued)
              .count()));
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (req.callback) {
        try {
          if (error) {
            req.callback({}, error);
          } else {
            req.callback(std::move(results[g]), nullptr);
          }
        } catch (...) {
          // The contract is "callbacks must not throw"; swallowing here
          // keeps one misbehaving callback from killing the dispatcher
          // (and with it every other in-flight request).
        }
      } else if (error) {
        req.promise.set_exception(error);
      } else {
        req.promise.set_value(std::move(results[g]));
      }
    }
  }

  // The served index, published as an immutable snapshot: readers copy the
  // shared_ptr under index_mutex_ and hold their copy for the duration of a
  // dispatch, so swap_index() never waits for in-flight work (zero drain)
  // and never frees an index a batch is still using.
  std::shared_ptr<const AnyIndex> index_;
  mutable std::mutex index_mutex_;
  ServeParams params_;
  std::size_t dims_ = 0;
  std::atomic<std::size_t> num_points_{0};  // selectivity estimation; swaps
  std::chrono::steady_clock::time_point start_;

  BoundedMpmcQueue<std::unique_ptr<Request>> queue_;
  std::atomic<std::size_t> queued_{0};  // admission credits (exact bound)

  std::shared_mutex lifecycle_mutex_;  // submit: shared / shutdown: unique
  bool accepting_ = true;              // guarded by lifecycle_mutex_
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;              // dispatcher idle/deadline waits
  std::condition_variable wake_cv_;
  std::mutex space_mutex_;             // kBlock producers waiting for space
  std::condition_variable space_cv_;
  std::mutex join_mutex_;              // serializes concurrent shutdown()s
  std::thread dispatcher_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> distance_comps_{0};
  std::atomic<std::uint64_t> filtered_{0};
  std::atomic<std::uint64_t> quantized_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> selectivity_micro_{0};  // sum, micro-units
  LatencyHistogram latency_;
};

// Convenience entry mirroring make_index: take ownership of a built index,
// return a running service.
template <typename T>
std::unique_ptr<SearchService<T>> serve(AnyIndex index,
                                        const ServeParams& params = {}) {
  return std::make_unique<SearchService<T>>(std::move(index), params);
}

}  // namespace ann
