// Bounded lock-free MPMC ring buffer (Dmitry Vyukov's array queue): each
// cell carries a sequence number that encodes whose turn it is, so producers
// and consumers claim cells with one CAS each and never take a lock. This is
// the submission path of the serving layer — many client threads push, the
// dispatcher pops — where a mutex-protected deque would serialize exactly
// the threads we are trying to keep independent.
//
// Semantics:
//   * try_push/try_pop never block; they return false when the ring is
//     full/empty *at that instant*. A push can transiently fail while a
//     concurrent pop is mid-flight in the target cell (the popper has
//     claimed it but not yet republished its sequence); callers that have
//     externally reserved space (SearchService's admission credits) retry.
//   * Capacity is rounded up to a power of two (the sequence arithmetic
//     needs it); callers wanting an exact bound enforce it outside, which
//     is what SearchService does.
//   * T must be default-constructible and movable (cells hold a T inline).
//
// Blocking, backpressure, and shutdown are deliberately NOT here: they need
// policy (reject vs block, drain on stop) that belongs to the service, and
// the repo's scheduler idiom — timed waits that tolerate missed wakeups —
// works best when the waiting layer owns its own condition variables.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

namespace ann {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity)
      : ring_size_(round_up_pow2(capacity)),
        mask_(ring_size_ - 1),
        cells_(new Cell[ring_size_]) {
    if (capacity == 0) {
      throw std::invalid_argument(
          "BoundedMpmcQueue: capacity must be positive");
    }
    for (std::size_t i = 0; i < ring_size_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  // Number of cells in the ring (>= the requested capacity).
  std::size_t ring_size() const { return ring_size_; }

  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto diff = static_cast<std::intptr_t>(seq) -
                  static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // ring full (or the target cell's pop is mid-flight)
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->seq.load(std::memory_order_acquire);
      auto diff = static_cast<std::intptr_t>(seq) -
                  static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t ring_size_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace ann
